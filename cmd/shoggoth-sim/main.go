// Command shoggoth-sim runs one strategy — or every registered strategy on
// a fleet worker pool — on one dataset profile and prints the paper's
// metrics (mAP@0.5, up/down bandwidth, average FPS).
//
// Usage:
//
//	shoggoth-sim -profile ua-detrac -strategy shoggoth -duration 1440 -seed 1
//	shoggoth-sim -profile kitti -strategy all -cycles 1 -json
//	shoggoth-sim -list
//
// With -devices N (cluster mode) it instead runs N edge devices — seeds
// seed..seed+N-1 — against ONE shared cloud labeling service on a single
// virtual clock, reporting per-device results plus the shared queue's
// contention statistics:
//
//	shoggoth-sim -profile ua-detrac -strategy shoggoth -devices 8 -queue-cap 4
//
// A -scenario (registered name) or -scenario-file (custom JSON spec) picks
// a composed world instead of the plain profile: per-device workload
// variants (script phase, shuffle, stretch, domain subsets) and
// time-varying network traces (outage windows, LTE-like fading, diurnal
// load). -devices 0 runs the scenario's natural fleet size; anything
// larger tiles its device slices:
//
//	shoggoth-sim -scenario lossy-uplink -strategy shoggoth
//	shoggoth-sim -scenario hetero-fleet -queue-cap 4 -cloud-policy wfq
//	shoggoth-sim -scenario-file myworld.json -devices 6
//
// The cloud's scheduling engine is configurable in every mode:
// -cloud-policy picks the service discipline (fifo serves in arrival
// order — the default; phi-priority labels the most-drifted device first;
// wfq gives every device a fair teacher share) and -cloud-workers sizes
// the teacher pipeline pool:
//
//	shoggoth-sim -profile ua-detrac -devices 8 -queue-cap 4 -cloud-policy wfq -cloud-workers 2
//
// The cloud can also run as a multi-replica routing tier: -cloud-replicas
// sizes the teacher fleet, -cloud-router picks the dispatch rule
// (round-robin, least-loaded, domain-affinity), -cloud-admit-rate/-burst
// put a token bucket in front, -cloud-coalesce batches compatible uploads
// across devices into one teacher forward, and -cloud-cold-start prices a
// domain's first batch on each replica:
//
//	shoggoth-sim -scenario multi-cloud -strategy shoggoth
//	shoggoth-sim -devices 8 -cloud-replicas 3 -cloud-router least-loaded -cloud-coalesce 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"shoggoth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-sim: ")

	profileName := flag.String("profile", shoggoth.ProfileDETRAC, "dataset profile (see -list)")
	strategyName := flag.String("strategy", "shoggoth", "strategy: edge-only, cloud-only, prompt, ams, shoggoth or all")
	scenarioName := flag.String("scenario", "", "registered scenario (see -list); overrides -profile")
	scenarioFile := flag.String("scenario-file", "", "custom scenario JSON spec; overrides -scenario and -profile")
	duration := flag.Float64("duration", 0, "stream duration in seconds (overrides -cycles)")
	cycles := flag.Float64("cycles", 2, "stream duration in scenario-script passes")
	seed := flag.Uint64("seed", 1, "run seed")
	rate := flag.Float64("rate", 0, "fixed sampling rate in fps (0 = strategy default)")
	workers := flag.Int("workers", 0, "concurrent sessions for -strategy all (0 = GOMAXPROCS)")
	devices := flag.Int("devices", 0, "edge devices sharing one cloud labeling service (cluster mode when > 1; 0 = the scenario's natural size)")
	queueCap := flag.Int("queue-cap", 0, "cloud labeling queue capacity in batches per replica (0 = unbounded)")
	cloudPolicy := flag.String("cloud-policy", "fifo",
		"cloud scheduling policy: "+strings.Join(shoggoth.CloudPolicies(), ", "))
	cloudWorkers := flag.Int("cloud-workers", 1, "cloud teacher pipeline workers per replica (concurrent label batches)")
	cloudReplicas := flag.Int("cloud-replicas", 1, "teacher replicas in the cloud routing tier")
	cloudRouter := flag.String("cloud-router", "",
		"cloud replica router: "+strings.Join(shoggoth.CloudRouters(), ", ")+" (empty = round-robin)")
	cloudAdmitRate := flag.Float64("cloud-admit-rate", 0, "token-bucket admission rate in batches/sec (0 = no admission control)")
	cloudAdmitBurst := flag.Float64("cloud-admit-burst", 0, "token-bucket burst capacity in batches (<1 clamps to 1)")
	cloudCoalesce := flag.Int("cloud-coalesce", 0, "coalesce up to this many compatible batches per teacher forward (cross-device batching; <2 = off)")
	cloudColdStart := flag.Float64("cloud-cold-start", 0, "cold-start penalty in seconds for a domain's first batch on a replica")
	fidelity := flag.String("fidelity", "full", "simulation fidelity: full (real models, golden-identical), events (sparse fleet-scale mode) or sampled (seeded full-fidelity subset inside an events fleet; cluster mode only)")
	sampleFrac := flag.Float64("sample-frac", 0, "sampled fidelity: fraction of devices run at full fidelity, in (0, 1] (0 = the default fraction; needs -fidelity sampled)")
	sampleSeed := flag.Uint64("sample-seed", 0, "sampled fidelity: seed of the device-subset draw (0 = the run seed; needs -fidelity sampled)")
	engine := flag.String("engine", shoggoth.EngineEvent, "cluster execution core: event (discrete-event engine) or frame-step (legacy stepper)")
	engineWorkers := flag.Int("engine-workers", 0, "event-engine device-batch workers (wall-clock only; results are identical at any value; 0 = 1)")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	list := flag.Bool("list", false, "list registered strategies, profiles, cloud policies and scenarios, then exit")
	verbose := flag.Bool("v", false, "print a wall-clock perf summary from the per-session workspace counters")
	computeTier := flag.String("compute-tier", "", "arithmetic tier: exact (frozen, golden-identical; the default) or fast (blocked fast-math kernels, parallel gradient accumulation, batched teacher labeling)")
	computeLane := flag.String("compute-lane", "", "fast tier arithmetic width: float64 (default) or float32")
	accumWorkers := flag.Int("accum-workers", 0, "fast tier gradient-accumulation workers (results identical at any value; <=1 runs inline)")
	flag.Parse()

	if *list {
		printRegistries()
		return
	}

	// Scenario files stamp cloud specs into every device config; a flag the
	// user actually typed overrides the spec, but a flag left at its default
	// must not clobber it.
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	applyCloudFlags := func(cfgs []shoggoth.Config) {
		for i := range cfgs {
			if explicit["queue-cap"] {
				cfgs[i].CloudQueueCap = *queueCap
			}
			if explicit["cloud-policy"] {
				cfgs[i].CloudPolicy = *cloudPolicy
			}
			if explicit["cloud-workers"] {
				cfgs[i].CloudWorkers = *cloudWorkers
			}
			if explicit["cloud-replicas"] {
				cfgs[i].CloudReplicas = *cloudReplicas
			}
			if explicit["cloud-router"] {
				cfgs[i].CloudRouter = *cloudRouter
			}
			if explicit["cloud-admit-rate"] {
				cfgs[i].CloudAdmitRate = *cloudAdmitRate
			}
			if explicit["cloud-admit-burst"] {
				cfgs[i].CloudAdmitBurst = *cloudAdmitBurst
			}
			if explicit["cloud-coalesce"] {
				cfgs[i].CloudCoalesce = *cloudCoalesce
			}
			if explicit["cloud-cold-start"] {
				cfgs[i].CloudColdStartSec = *cloudColdStart
			}
		}
	}

	kinds, err := parseStrategies(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	fid, err := parseFidelity(*fidelity)
	if err != nil {
		log.Fatal(err)
	}
	if fid == shoggoth.FidelitySampled {
		if *sampleFrac < 0 || *sampleFrac > 1 {
			log.Fatalf("-sample-frac %g out of range (0, 1]", *sampleFrac)
		}
	} else if explicit["sample-frac"] || explicit["sample-seed"] {
		log.Fatal("-sample-frac/-sample-seed need -fidelity sampled")
	}

	baseOpts := func(seed uint64) []shoggoth.Option {
		opts := []shoggoth.Option{shoggoth.WithSeed(seed), shoggoth.WithCycles(*cycles)}
		if fid == shoggoth.FidelitySampled {
			opts = append(opts, shoggoth.WithSampledFidelity(*sampleFrac, *sampleSeed))
		} else {
			opts = append(opts, shoggoth.WithFidelity(fid))
		}
		if *duration > 0 {
			opts = append(opts, shoggoth.WithDuration(*duration))
		}
		if *rate > 0 {
			opts = append(opts, shoggoth.WithFixedRate(*rate))
		}
		if *computeTier != "" {
			opts = append(opts, shoggoth.WithComputeTier(*computeTier))
		}
		if *computeLane != "" {
			opts = append(opts, shoggoth.WithComputeLane(*computeLane))
		}
		if *accumWorkers > 0 {
			opts = append(opts, shoggoth.WithAccumWorkers(*accumWorkers))
		}
		return opts
	}

	scen, err := resolveScenario(*scenarioFile, *scenarioName)
	if err != nil {
		log.Fatal(err)
	}

	if scen != nil {
		if len(kinds) != 1 {
			log.Fatal("a scenario needs a single -strategy (not \"all\")")
		}
		cfgs, err := shoggoth.ScenarioConfigs(scen, kinds[0], *devices, baseOpts(*seed)...)
		if err != nil {
			log.Fatal(err)
		}
		header := fmt.Sprintf("scenario=%s strategy=%s", scen.Name, kinds[0])
		applyCloudFlags(cfgs)
		if len(cfgs) == 1 {
			if fid == shoggoth.FidelitySampled {
				log.Fatal("-fidelity sampled needs a device cluster (a multi-device scenario or -devices > 1): it samples across a fleet run by the event engine")
			}
			runFleet(cfgs, *workers, *asJSON, *verbose, header, *seed)
			return
		}
		runCluster(cfgs, clusterParams{
			seed: *seed, engine: *engine, engineWorkers: *engineWorkers,
		}, *asJSON, *verbose, header)
		return
	}

	profile, err := shoggoth.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}

	if *devices > 1 {
		if len(kinds) != 1 {
			log.Fatal("-devices needs a single -strategy (not \"all\")")
		}
		cfgs := make([]shoggoth.Config, *devices)
		for i := range cfgs {
			cfgs[i] = shoggoth.NewConfig(kinds[0], profile, baseOpts(*seed+uint64(i))...)
			cfgs[i].DeviceID = fmt.Sprintf("edge-%d", i+1)
		}
		applyCloudFlags(cfgs)
		header := fmt.Sprintf("profile=%s strategy=%s", profile.Name, kinds[0])
		runCluster(cfgs, clusterParams{
			seed: *seed, engine: *engine, engineWorkers: *engineWorkers,
		}, *asJSON, *verbose, header)
		return
	}

	if fid == shoggoth.FidelitySampled {
		log.Fatal("-fidelity sampled needs a device cluster (a multi-device scenario or -devices > 1): it samples across a fleet run by the event engine")
	}
	cfgs := shoggoth.Grid([]*shoggoth.Profile{profile}, kinds, baseOpts(*seed)...)
	applyCloudFlags(cfgs)
	runFleet(cfgs, *workers, *asJSON, *verbose, "profile="+profile.Name, *seed)
}

// resolveScenario loads the scenario named on the command line (a file
// spec wins over a registered name); nil means plain-profile mode.
func resolveScenario(file, name string) (*shoggoth.Scenario, error) {
	if file != "" {
		return shoggoth.LoadScenarioFile(file)
	}
	if name != "" {
		return shoggoth.ScenarioByName(name)
	}
	return nil, nil
}

// printRegistries lists every registry with its one-line descriptions —
// nothing here is hand-maintained; the tables come from the registries
// themselves.
func printRegistries() {
	sections := []struct {
		title   string
		entries []shoggoth.RegistryEntry
	}{
		{"strategies (-strategy)", shoggoth.StrategyEntries()},
		{"profiles (-profile)", shoggoth.ProfileEntries()},
		{"cloud policies (-cloud-policy)", shoggoth.CloudPolicyEntries()},
		{"cloud routers (-cloud-router)", shoggoth.CloudRouterEntries()},
		{"scenarios (-scenario)", shoggoth.ScenarioEntries()},
		{"fidelities (-fidelity)", []shoggoth.RegistryEntry{
			{Name: "full", Summary: "real student SGD, every frame materialized — the golden-identical default"},
			{Name: "events", Summary: "fleet-scale sparse mode: analytic costing, no student deployed, frames priced not executed"},
			{Name: "sampled", Summary: "seeded device subset at full fidelity inside an events fleet; fleet accuracy extrapolated with a bootstrap error bound (-sample-frac, -sample-seed; cluster mode only)"},
		}},
	}
	for i, s := range sections {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s:\n", s.title)
		for _, e := range s.entries {
			fmt.Printf("  %-15s %s\n", e.Name, e.Summary)
		}
	}
}

// runFleet executes independent sessions on a worker pool and prints the
// strategy table.
func runFleet(cfgs []shoggoth.Config, workers int, asJSON, verbose bool, header string, seed uint64) {
	// The fleet bounds concurrency and pretrains one student per profile,
	// so every strategy deploys the identical model.
	fleet := &shoggoth.Fleet{Workers: workers}
	if verbose {
		fleet.Perf = &shoggoth.PerfCounters{}
		// Give every session's counters real timestamps; the library
		// default is no clock at all (Results are unaffected either way).
		clock := shoggoth.WallClock()
		for i := range cfgs {
			cfgs[i].PerfClock = clock
		}
	}
	all, err := fleet.Run(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	if verbose {
		// Diagnostics only: the counters are workspace state and never feed
		// back into Results.
		printPerf(fleet.Perf)
	}

	if asJSON {
		emitJSON(all)
		return
	}
	fmt.Printf("%s duration=%.0fs seed=%d\n\n", header, all[0].Duration, seed)
	fmt.Printf("%-11s %9s %9s %9s %8s %9s %9s %9s\n",
		"strategy", "mAP@0.5", "avgIoU", "up Kbps", "dn Kbps", "fps", "sessions", "sampled")
	for _, r := range all {
		fmt.Printf("%-11s %8.1f%% %9.3f %9.0f %8.0f %9.1f %9d %9d\n",
			r.Strategy, r.MAP50*100, r.AvgIoU, r.UpKbps, r.DownKbps, r.AvgFPS, r.Sessions, r.SampledFrames)
	}
}

// clusterParams bundles the cluster-mode knobs. Cloud-tier settings travel
// inside the device configs (the cluster adopts device 0's spec), so only
// the execution-core knobs remain here.
type clusterParams struct {
	seed          uint64
	engine        string
	engineWorkers int
}

// parseFidelity maps the -fidelity flag onto the Fidelity constants.
func parseFidelity(name string) (shoggoth.Fidelity, error) {
	switch strings.ToLower(name) {
	case "", "full":
		return shoggoth.FidelityFull, nil
	case "events":
		return shoggoth.FidelityEvents, nil
	case "sampled":
		return shoggoth.FidelitySampled, nil
	default:
		return "", fmt.Errorf("unknown -fidelity %q (want full, events or sampled)", name)
	}
}

// runCluster steps prebuilt device configs against one shared cloud
// labeling service and prints per-device results plus the queue's
// contention statistics.
func runCluster(cfgs []shoggoth.Config, p clusterParams, asJSON, verbose bool, header string) {
	cluster := &shoggoth.Cluster{Engine: p.engine, EngineWorkers: p.engineWorkers}
	if verbose {
		cluster.Perf = &shoggoth.PerfCounters{}
		clock := shoggoth.WallClock()
		for i := range cfgs {
			cfgs[i].PerfClock = clock
		}
	}
	res, err := cluster.Run(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	if verbose {
		printPerf(cluster.Perf)
	}

	if asJSON {
		emitJSON(res)
		return
	}
	policy := cfgs[0].CloudPolicy
	if policy == "" {
		policy = "fifo"
	}
	workers := cfgs[0].CloudWorkers
	if workers < 1 {
		workers = 1
	}
	replicas := cfgs[0].CloudReplicas
	if replicas < 1 {
		replicas = 1
	}
	router := cfgs[0].CloudRouter
	if router == "" {
		router = "round-robin"
	}
	n := len(cfgs)
	fmt.Printf("%s devices=%d duration=%.0fs seeds=%d..%d queue-cap=%d policy=%s workers=%d replicas=%d router=%s\n\n",
		header, n, res.Devices[0].Duration, p.seed, p.seed+uint64(n)-1, cfgs[0].CloudQueueCap, policy, workers, replicas, router)
	fmt.Printf("%-8s %-10s %9s %9s %8s %9s %9s %9s %10s %10s\n",
		"device", "profile", "mAP@0.5", "up Kbps", "fps", "sessions", "batches", "dropped", "qdelay(s)", "qmax(s)")
	for _, r := range res.Devices {
		fmt.Printf("%-8s %-10s %8.1f%% %9.0f %8.1f %9d %9d %9d %10.3f %10.3f\n",
			r.Device, r.Profile, r.MAP50*100, r.UpKbps, r.AvgFPS, r.Sessions,
			r.CloudBatches, r.CloudDroppedBatches, r.CloudQueueDelayMeanSec, r.CloudQueueDelayMaxSec)
	}
	c := res.Cloud
	fmt.Printf("\ncloud: %d batches (%d dropped), queue delay mean %.3fs max %.3fs, teacher busy %.1fs (%.1f%% utilization)\n",
		c.Batches, c.DroppedBatches, c.QueueDelayMeanSec, c.QueueDelayMaxSec,
		c.BusySeconds, res.Utilization()*100)
	if len(c.Replicas) > 1 {
		for i, rep := range c.Replicas {
			fmt.Printf("  replica %d: %d batches (%d dropped), qdelay mean %.3fs, busy %.1fs\n",
				i, rep.Batches, rep.DroppedBatches, rep.QueueDelayMeanSec, rep.BusySeconds)
		}
	}
	if c.AdmissionRejected > 0 {
		fmt.Printf("  admission control rejected %d batches\n", c.AdmissionRejected)
	}
	if c.CoalescedForwards > 0 {
		fmt.Printf("  %d coalesced teacher forwards covering %d batches\n", c.CoalescedForwards, c.CoalescedBatches)
	}
	if len(c.SLOClasses) > 0 {
		classes := make([]string, 0, len(c.SLOClasses))
		for name := range c.SLOClasses {
			classes = append(classes, name)
		}
		sort.Strings(classes)
		for _, name := range classes {
			sc := c.SLOClasses[name]
			fmt.Printf("  class %-10s %d batches (%.1f%% dropped), label latency p50 %.3fs p99 %.3fs\n",
				name, sc.Batches, sc.DropRate*100, sc.LabelLatencyP50Sec, sc.LabelLatencyP99Sec)
		}
	}
	fmt.Printf("  jain fairness across devices: %.3f\n", c.JainFairness)
	if s := res.Sampled; s != nil {
		fmt.Printf("sampled: %d/%d devices at full fidelity (frac %g, seed %d)\n",
			s.SampledDevices, s.FleetDevices, s.Frac, s.Seed)
		fmt.Printf("  mAP@0.5 est %.1f%% ± %.1f%% (95%% CI [%.1f%%, %.1f%%], %d bootstrap resamples)\n",
			s.MAP50.Mean*100, s.MAP50.StdErr*100, s.MAP50.Lo95*100, s.MAP50.Hi95*100, s.Resamples)
		fmt.Printf("  avgIoU  est %.3f ± %.3f (95%% CI [%.3f, %.3f])\n",
			s.AvgIoU.Mean, s.AvgIoU.StdErr, s.AvgIoU.Lo95, s.AvgIoU.Hi95)
	}
	if res.Engine != nil {
		fmt.Printf("engine: %d events over %d epochs\n", res.Engine.Events, res.Engine.Epochs)
	}
}

func printPerf(pc *shoggoth.PerfCounters) {
	fmt.Fprintf(os.Stderr,
		"perf: %d frames inferred at %.0f frames/s wall, %d train steps at %.0f steps/s wall (%d sessions)\n",
		pc.InferFrames, pc.InferFPS(), pc.TrainSteps, pc.TrainStepsPerSec(), pc.TrainSessions)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

func parseStrategies(name string) ([]shoggoth.StrategyKind, error) {
	if strings.EqualFold(name, "all") {
		return shoggoth.StrategyKinds(), nil
	}
	kind, err := shoggoth.ParseStrategy(name)
	if err != nil {
		return nil, err
	}
	return []shoggoth.StrategyKind{kind}, nil
}
