// Command shoggoth-sim runs one strategy — or every registered strategy on
// a fleet worker pool — on one dataset profile and prints the paper's
// metrics (mAP@0.5, up/down bandwidth, average FPS).
//
// Usage:
//
//	shoggoth-sim -profile ua-detrac -strategy shoggoth -duration 1440 -seed 1
//	shoggoth-sim -profile kitti -strategy all -cycles 1 -json
//
// With -devices N (cluster mode) it instead runs N edge devices — seeds
// seed..seed+N-1 — against ONE shared cloud labeling service on a single
// virtual clock, reporting per-device results plus the shared queue's
// contention statistics:
//
//	shoggoth-sim -profile ua-detrac -strategy shoggoth -devices 8 -queue-cap 4
//
// The cloud's scheduling engine is configurable in both modes:
// -cloud-policy picks the service discipline (fifo serves in arrival
// order — the default; phi-priority labels the most-drifted device first;
// wfq gives every device a fair teacher share) and -cloud-workers sizes
// the teacher pipeline pool:
//
//	shoggoth-sim -profile ua-detrac -devices 8 -queue-cap 4 -cloud-policy wfq -cloud-workers 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"shoggoth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-sim: ")

	profileName := flag.String("profile", shoggoth.ProfileDETRAC, "dataset profile: ua-detrac, kitti or waymo")
	strategyName := flag.String("strategy", "shoggoth", "strategy: edge-only, cloud-only, prompt, ams, shoggoth or all")
	duration := flag.Float64("duration", 0, "stream duration in seconds (overrides -cycles)")
	cycles := flag.Float64("cycles", 2, "stream duration in scenario-script passes")
	seed := flag.Uint64("seed", 1, "run seed")
	rate := flag.Float64("rate", 0, "fixed sampling rate in fps (0 = strategy default)")
	workers := flag.Int("workers", 0, "concurrent sessions for -strategy all (0 = GOMAXPROCS)")
	devices := flag.Int("devices", 1, "edge devices sharing one cloud labeling service (cluster mode when > 1)")
	queueCap := flag.Int("queue-cap", 0, "cloud labeling queue capacity in batches (0 = unbounded)")
	cloudPolicy := flag.String("cloud-policy", "fifo",
		"cloud scheduling policy: "+strings.Join(shoggoth.CloudPolicies(), ", "))
	cloudWorkers := flag.Int("cloud-workers", 1, "cloud teacher pipeline workers (concurrent label batches)")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	verbose := flag.Bool("v", false, "print a wall-clock perf summary from the per-session workspace counters")
	flag.Parse()

	profile, err := shoggoth.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}

	kinds, err := parseStrategies(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	baseOpts := func(seed uint64) []shoggoth.Option {
		opts := []shoggoth.Option{shoggoth.WithSeed(seed), shoggoth.WithCycles(*cycles)}
		if *duration > 0 {
			opts = append(opts, shoggoth.WithDuration(*duration))
		}
		if *rate > 0 {
			opts = append(opts, shoggoth.WithFixedRate(*rate))
		}
		return opts
	}

	if *devices > 1 {
		if len(kinds) != 1 {
			log.Fatal("-devices needs a single -strategy (not \"all\")")
		}
		runCluster(profile, kinds[0], clusterParams{
			devices: *devices, queueCap: *queueCap,
			policy: *cloudPolicy, workers: *cloudWorkers, seed: *seed,
		}, baseOpts, *asJSON, *verbose)
		return
	}

	cfgs := shoggoth.Grid([]*shoggoth.Profile{profile}, kinds, baseOpts(*seed)...)
	for i := range cfgs {
		cfgs[i].CloudQueueCap = *queueCap
		cfgs[i].CloudPolicy = *cloudPolicy
		cfgs[i].CloudWorkers = *cloudWorkers
	}

	// The fleet bounds concurrency and pretrains one student per profile,
	// so every strategy deploys the identical model.
	fleet := &shoggoth.Fleet{Workers: *workers}
	if *verbose {
		fleet.Perf = &shoggoth.PerfCounters{}
	}
	all, err := fleet.Run(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		// Diagnostics only: the counters are workspace state and never feed
		// back into Results.
		pc := fleet.Perf
		fmt.Fprintf(os.Stderr,
			"perf: %d frames inferred at %.0f frames/s wall, %d train steps at %.0f steps/s wall (%d sessions)\n",
			pc.InferFrames, pc.InferFPS(), pc.TrainSteps, pc.TrainStepsPerSec(), pc.TrainSessions)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("profile=%s duration=%.0fs seed=%d\n\n", profile.Name, all[0].Duration, *seed)
	fmt.Printf("%-11s %9s %9s %9s %8s %9s %9s %9s\n",
		"strategy", "mAP@0.5", "avgIoU", "up Kbps", "dn Kbps", "fps", "sessions", "sampled")
	for _, r := range all {
		fmt.Printf("%-11s %8.1f%% %9.3f %9.0f %8.0f %9.1f %9d %9d\n",
			r.Strategy, r.MAP50*100, r.AvgIoU, r.UpKbps, r.DownKbps, r.AvgFPS, r.Sessions, r.SampledFrames)
	}
}

// clusterParams bundles the cluster-mode knobs.
type clusterParams struct {
	devices  int
	queueCap int
	policy   string
	workers  int
	seed     uint64
}

// runCluster steps N devices against one shared cloud labeling service and
// prints per-device results plus the queue's contention statistics.
func runCluster(profile *shoggoth.Profile, kind shoggoth.StrategyKind, p clusterParams,
	baseOpts func(seed uint64) []shoggoth.Option, asJSON, verbose bool) {

	cfgs := make([]shoggoth.Config, p.devices)
	for i := range cfgs {
		cfgs[i] = shoggoth.NewConfig(kind, profile, baseOpts(p.seed+uint64(i))...)
		cfgs[i].DeviceID = fmt.Sprintf("edge-%d", i+1)
	}
	cluster := &shoggoth.Cluster{QueueCap: p.queueCap, Policy: p.policy, Workers: p.workers}
	if verbose {
		cluster.Perf = &shoggoth.PerfCounters{}
	}
	res, err := cluster.Run(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	if verbose {
		pc := cluster.Perf
		fmt.Fprintf(os.Stderr,
			"perf: %d frames inferred at %.0f frames/s wall, %d train steps at %.0f steps/s wall (%d sessions)\n",
			pc.InferFrames, pc.InferFPS(), pc.TrainSteps, pc.TrainStepsPerSec(), pc.TrainSessions)
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	policy := p.policy
	if policy == "" {
		policy = "fifo"
	}
	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	fmt.Printf("profile=%s strategy=%s devices=%d duration=%.0fs seeds=%d..%d queue-cap=%d policy=%s workers=%d\n\n",
		profile.Name, kind, p.devices, res.Devices[0].Duration, p.seed, p.seed+uint64(p.devices)-1, p.queueCap, policy, workers)
	fmt.Printf("%-8s %9s %9s %8s %9s %9s %9s %10s %10s\n",
		"device", "mAP@0.5", "up Kbps", "fps", "sessions", "batches", "dropped", "qdelay(s)", "qmax(s)")
	for _, r := range res.Devices {
		fmt.Printf("%-8s %8.1f%% %9.0f %8.1f %9d %9d %9d %10.3f %10.3f\n",
			r.Device, r.MAP50*100, r.UpKbps, r.AvgFPS, r.Sessions,
			r.CloudBatches, r.CloudDroppedBatches, r.CloudQueueDelayMeanSec, r.CloudQueueDelayMaxSec)
	}
	c := res.Cloud
	fmt.Printf("\ncloud: %d batches (%d dropped), queue delay mean %.3fs max %.3fs, teacher busy %.1fs (%.1f%% utilization)\n",
		c.Batches, c.DroppedBatches, c.QueueDelayMeanSec, c.QueueDelayMaxSec,
		c.BusySeconds, res.Utilization()*100)
}

func parseStrategies(name string) ([]shoggoth.StrategyKind, error) {
	if strings.EqualFold(name, "all") {
		return shoggoth.StrategyKinds(), nil
	}
	kind, err := shoggoth.ParseStrategy(name)
	if err != nil {
		return nil, err
	}
	return []shoggoth.StrategyKind{kind}, nil
}
