// Command shoggoth-sim runs one strategy on one dataset profile and prints
// the paper's metrics (mAP@0.5, up/down bandwidth, average FPS).
//
// Usage:
//
//	shoggoth-sim -profile ua-detrac -strategy shoggoth -duration 1440 -seed 1
//	shoggoth-sim -profile kitti -strategy all -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"strings"

	"shoggoth/internal/core"
	"shoggoth/internal/detect"
	"shoggoth/internal/strategy"
	"shoggoth/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-sim: ")

	profileName := flag.String("profile", video.ProfileDETRAC, "dataset profile: ua-detrac, kitti or waymo")
	strategyName := flag.String("strategy", "shoggoth", "strategy: edge-only, cloud-only, prompt, ams, shoggoth or all")
	duration := flag.Float64("duration", 0, "stream duration in seconds (0 = two script cycles)")
	seed := flag.Uint64("seed", 1, "run seed")
	rate := flag.Float64("rate", 0, "fixed sampling rate in fps (0 = strategy default)")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	flag.Parse()

	profile, err := video.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}

	kinds, err := parseStrategies(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	// Pretrain once; every strategy deploys the identical model.
	pretrained := detect.NewPretrainedStudent(profile, rand.New(rand.NewPCG(profile.Seed, 3)))

	var all []*core.Results
	for _, kind := range kinds {
		cfg := core.NewConfig(kind, profile)
		cfg.Seed = *seed
		cfg.Pretrained = pretrained
		if *duration > 0 {
			cfg.DurationSec = *duration
		}
		if *rate > 0 {
			cfg.SampleRate = *rate
		}
		res, err := core.RunExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, res)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("profile=%s duration=%.0fs seed=%d\n\n", profile.Name, all[0].Duration, *seed)
	fmt.Printf("%-11s %9s %9s %9s %8s %9s %9s %9s\n",
		"strategy", "mAP@0.5", "avgIoU", "up Kbps", "dn Kbps", "fps", "sessions", "sampled")
	for _, r := range all {
		fmt.Printf("%-11s %8.1f%% %9.3f %9.0f %8.0f %9.1f %9d %9d\n",
			r.Strategy, r.MAP50*100, r.AvgIoU, r.UpKbps, r.DownKbps, r.AvgFPS, r.Sessions, r.SampledFrames)
	}
}

func parseStrategies(name string) ([]core.StrategyKind, error) {
	if strings.EqualFold(name, "all") {
		return core.StrategyKinds(), nil
	}
	kind, err := strategy.Parse(name)
	if err != nil {
		return nil, err
	}
	return []core.StrategyKind{kind}, nil
}
