// Command shoggoth-sim runs one strategy — or every registered strategy on
// a fleet worker pool — on one dataset profile and prints the paper's
// metrics (mAP@0.5, up/down bandwidth, average FPS).
//
// Usage:
//
//	shoggoth-sim -profile ua-detrac -strategy shoggoth -duration 1440 -seed 1
//	shoggoth-sim -profile kitti -strategy all -cycles 1 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"shoggoth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-sim: ")

	profileName := flag.String("profile", shoggoth.ProfileDETRAC, "dataset profile: ua-detrac, kitti or waymo")
	strategyName := flag.String("strategy", "shoggoth", "strategy: edge-only, cloud-only, prompt, ams, shoggoth or all")
	duration := flag.Float64("duration", 0, "stream duration in seconds (overrides -cycles)")
	cycles := flag.Float64("cycles", 2, "stream duration in scenario-script passes")
	seed := flag.Uint64("seed", 1, "run seed")
	rate := flag.Float64("rate", 0, "fixed sampling rate in fps (0 = strategy default)")
	workers := flag.Int("workers", 0, "concurrent sessions for -strategy all (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	verbose := flag.Bool("v", false, "print a wall-clock perf summary from the per-session workspace counters")
	flag.Parse()

	profile, err := shoggoth.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}

	kinds, err := parseStrategies(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	opts := []shoggoth.Option{shoggoth.WithSeed(*seed), shoggoth.WithCycles(*cycles)}
	if *duration > 0 {
		opts = append(opts, shoggoth.WithDuration(*duration))
	}
	if *rate > 0 {
		opts = append(opts, shoggoth.WithFixedRate(*rate))
	}
	cfgs := shoggoth.Grid([]*shoggoth.Profile{profile}, kinds, opts...)

	// The fleet bounds concurrency and pretrains one student per profile,
	// so every strategy deploys the identical model.
	fleet := &shoggoth.Fleet{Workers: *workers}
	if *verbose {
		fleet.Perf = &shoggoth.PerfCounters{}
	}
	all, err := fleet.Run(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		// Diagnostics only: the counters are workspace state and never feed
		// back into Results.
		pc := fleet.Perf
		fmt.Fprintf(os.Stderr,
			"perf: %d frames inferred at %.0f frames/s wall, %d train steps at %.0f steps/s wall (%d sessions)\n",
			pc.InferFrames, pc.InferFPS(), pc.TrainSteps, pc.TrainStepsPerSec(), pc.TrainSessions)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("profile=%s duration=%.0fs seed=%d\n\n", profile.Name, all[0].Duration, *seed)
	fmt.Printf("%-11s %9s %9s %9s %8s %9s %9s %9s\n",
		"strategy", "mAP@0.5", "avgIoU", "up Kbps", "dn Kbps", "fps", "sessions", "sampled")
	for _, r := range all {
		fmt.Printf("%-11s %8.1f%% %9.3f %9.0f %8.0f %9.1f %9d %9d\n",
			r.Strategy, r.MAP50*100, r.AvgIoU, r.UpKbps, r.DownKbps, r.AvgFPS, r.Sessions, r.SampledFrames)
	}
}

func parseStrategies(name string) ([]shoggoth.StrategyKind, error) {
	if strings.EqualFold(name, "all") {
		return shoggoth.StrategyKinds(), nil
	}
	kind, err := shoggoth.ParseStrategy(name)
	if err != nil {
		return nil, err
	}
	return []shoggoth.StrategyKind{kind}, nil
}
