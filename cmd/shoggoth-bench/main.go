// Command shoggoth-bench regenerates every table and figure of the paper's
// evaluation section and prints measured values next to the paper's.
//
// Usage:
//
//	shoggoth-bench                 # all experiments, quick mode (1 cycle)
//	shoggoth-bench -full           # paper-scale mode (2 cycles)
//	shoggoth-bench -exp table3     # one experiment: table1 fig4 table2 table3 fig5 extra policy router scenario tier
//	shoggoth-bench -perf           # compute-core perf mode: refresh BENCH_core.json
//	shoggoth-bench -fleet-smoke 100000 -fleet-min-events-per-sec 1500000
//	                               # CI fleet smoke: one capped events run with a throughput floor
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"shoggoth/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-bench: ")

	full := flag.Bool("full", false, "paper-scale runs (two scenario cycles per run)")
	exp := flag.String("exp", "all", "experiment: table1, fig4, table2, table3, fig5, extra, policy, router, scenario, tier or all")
	seed := flag.Uint64("seed", 1, "run seed")
	workers := flag.Int("workers", 0, "concurrent sessions per experiment (0 = GOMAXPROCS)")
	perf := flag.Bool("perf", false, "measure the compute-core hot paths (train step, inference) instead of the paper experiments")
	perfOut := flag.String("perf-out", "BENCH_core.json", "perf mode: output file (baseline entries are preserved)")
	perfMinFast := flag.Float64("perf-min-fast-speedup", 0, "perf mode: fail unless the fast tier is at least this many times faster than exact (0 = no gate; skipped without AVX2+FMA)")
	fleetSmoke := flag.Int("fleet-smoke", 0, "run one capped events-fidelity fleet at this many devices and exit (CI smoke; 0 = off)")
	fleetMinEvents := flag.Float64("fleet-min-events-per-sec", 0, "fleet smoke: fail unless throughput reaches this many events/sec (0 = no gate)")
	fleetSmokeOut := flag.String("fleet-smoke-out", "", "fleet smoke: write the measurement as JSON to this path (empty = don't)")
	flag.Parse()

	if *fleetSmoke > 0 {
		if err := runFleetSmoke(*fleetSmoke, *fleetMinEvents, *fleetSmokeOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *perf {
		if err := runPerf(*perfOut, *perfMinFast); err != nil {
			log.Fatal(err)
		}
		return
	}

	mode := experiments.Quick()
	if *full {
		mode = experiments.Full()
	}
	mode.Seed = *seed
	mode.Workers = *workers

	want := strings.ToLower(*exp)
	run := func(name string) bool { return want == "all" || want == name }

	var t1 *experiments.Table1Result
	if run("table1") || run("fig5") {
		start := time.Now()
		var err error
		t1, err = experiments.Table1(mode)
		if err != nil {
			log.Fatal(err)
		}
		if run("table1") {
			fmt.Println(t1.Render())
			fmt.Printf("(table1 took %.0fs)\n\n", time.Since(start).Seconds())
		}
	}
	if run("fig4") {
		start := time.Now()
		f4, err := experiments.Figure4(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f4.Render())
		fmt.Printf("(fig4 took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("table2") {
		start := time.Now()
		t2, err := experiments.Table2(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t2.Render())
		fmt.Printf("(table2 took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("table3") {
		start := time.Now()
		t3, err := experiments.Table3(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t3.Render())
		fmt.Printf("(table3 took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("fig5") {
		start := time.Now()
		f5, err := experiments.Figure5(mode, t1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f5.Render())
		fmt.Printf("(fig5 took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("extra") {
		start := time.Now()
		ex, err := experiments.Extra(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ex.Render())
		fmt.Printf("(extra took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("policy") {
		start := time.Now()
		pa, err := experiments.PolicyAblation(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(pa.Render())
		fmt.Printf("(policy took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("router") {
		start := time.Now()
		ra, err := experiments.RouterAblation(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ra.Render())
		fmt.Printf("(router took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("scenario") {
		start := time.Now()
		sa, err := experiments.ScenarioAblation(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(sa.Render())
		fmt.Printf("(scenario took %.0fs)\n\n", time.Since(start).Seconds())
	}
	if run("tier") {
		start := time.Now()
		ta, err := experiments.TierAblation(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ta.Render())
		fmt.Printf("(tier took %.0fs)\n\n", time.Since(start).Seconds())
	}
}
