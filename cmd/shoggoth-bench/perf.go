package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"testing"

	"shoggoth/internal/cloud"
	"shoggoth/internal/detect"
	"shoggoth/internal/nn"
	"shoggoth/internal/sim"
	"shoggoth/internal/tensor"
	"shoggoth/internal/video"
)

// PerfRecord is one measurement of the compute core's hot paths.
type PerfRecord struct {
	// Label describes the code state and machine the record was taken on.
	Label string `json:"label"`

	TrainNsPerStep        float64 `json:"train_ns_per_step"`
	TrainStepsPerSec      float64 `json:"train_steps_per_sec"`
	TrainAllocsPerSession int64   `json:"train_allocs_per_session"`
	TrainBytesPerSession  int64   `json:"train_bytes_per_session"`

	InferNsPerFrame   float64 `json:"infer_ns_per_frame"`
	InferFramesPerSec float64 `json:"infer_frames_per_sec"`
	InferAllocsPerOp  int64   `json:"infer_allocs_per_frame"`

	// Cloud scheduling engine: virtual-time cost of admitting, scheduling
	// and labeling one 4-frame batch on a contended 8-device service —
	// the eager arrival-order path (fifo) and the deferred dispatch path
	// (wfq, queue scanned under backlog). Absent in records predating the
	// engine.
	CloudSchedFIFONsPerBatch float64 `json:"cloud_sched_fifo_ns_per_batch,omitempty"`
	CloudSchedWFQNsPerBatch  float64 `json:"cloud_sched_wfq_ns_per_batch,omitempty"`
}

// TierPerf is one compute tier's training trajectory: the steady-state
// adaptive-training step at the paper's configuration on that tier's
// kernels.
type TierPerf struct {
	// Tier and Lane identify the measured configuration ("exact", or
	// "fast" with its arithmetic width); Workers is the fast tier's
	// gradient-accumulation worker count (0 for exact).
	Tier    string `json:"tier"`
	Lane    string `json:"lane,omitempty"`
	Workers int    `json:"workers,omitempty"`

	TrainNsPerStep        float64 `json:"train_ns_per_step"`
	TrainStepsPerSec      float64 `json:"train_steps_per_sec"`
	TrainAllocsPerSession int64   `json:"train_allocs_per_session"`
	TrainBytesPerSession  int64   `json:"train_bytes_per_session"`
}

// TeacherBatchPerf compares per-frame teacher labeling against the fast
// tier's slab-batched labeling (cloud.Labeler.LabelBatch) over identical
// frames: the real wall-clock gain behind the Coalesce path's modeled one.
type TeacherBatchPerf struct {
	PerFrameNsPerFrame float64 `json:"per_frame_ns_per_frame"`
	BatchedNsPerFrame  float64 `json:"batched_ns_per_frame"`
	Speedup            float64 `json:"speedup"`
}

// CloudTierPerf measures the multi-replica routing tier: the wall-clock
// cost of one routed batch per stock router on a contended 3-replica tier,
// and the modeled teacher throughput with cross-device batching on vs off
// (same replica count, so the delta is coalescing alone).
type CloudTierPerf struct {
	// RouterNsPerDispatch is the cost of one 4-frame batch through
	// admission, routing and labeling, keyed by router name.
	RouterNsPerDispatch map[string]float64 `json:"router_ns_per_dispatch"`
	// UnbatchedBatchesPerBusySec is modeled teacher throughput (batches
	// served per teacher-busy second) with coalescing off.
	UnbatchedBatchesPerBusySec float64 `json:"unbatched_batches_per_busy_sec"`
	// BatchedBatchesPerBusySec is the same with 4-way coalescing.
	BatchedBatchesPerBusySec float64 `json:"batched_batches_per_busy_sec"`
	// BatchingSpeedup is batched over unbatched throughput.
	BatchingSpeedup float64 `json:"batching_speedup"`
	// CoalescedForwards counts multi-batch teacher forwards in the batched
	// measurement (a zero here means coalescing never engaged).
	CoalescedForwards int `json:"coalesced_forwards"`
}

// PerfFile is the on-disk schema of BENCH_core.json: the frozen pre-refactor
// baseline plus the most recent measurement, so every future PR has a perf
// trajectory to compare against.
type PerfFile struct {
	Schema   int         `json:"schema"`
	Note     string      `json:"note"`
	Baseline *PerfRecord `json:"baseline,omitempty"`
	Current  *PerfRecord `json:"current,omitempty"`

	SpeedupTrainNsPerStep float64 `json:"speedup_train_ns_per_step,omitempty"`
	SpeedupInferNsPerOp   float64 `json:"speedup_infer_ns_per_frame,omitempty"`
	AllocReductionTrain   float64 `json:"alloc_reduction_train,omitempty"`

	// Fleet is the fleet-scale record: rush-hour clusters at events
	// fidelity, 1k/10k/100k devices, event engine vs the legacy frame
	// stepper — uncapped, full per-device results, so the rows stay
	// comparable with the pre-rebuild trajectory. SpeedupFleet10k is the
	// engine's events/sec over the stepper's at 10k devices. Fleet100k
	// and Fleet1M measure the capped operating point (AggregateOnly,
	// QueueCap; the 1M record adds the engine phase split), and
	// SpeedupFleet100kVsSerialMerge is Fleet100k's events/sec against
	// the frozen pre-hierarchical-merge serial-drain baseline.
	Fleet                         []FleetPerfRecord  `json:"fleet,omitempty"`
	SpeedupFleet10k               float64            `json:"speedup_fleet_events_per_sec_10k,omitempty"`
	Fleet100k                     *Fleet1MPerfRecord `json:"fleet_100k_capped,omitempty"`
	Fleet1M                       *Fleet1MPerfRecord `json:"fleet_1m,omitempty"`
	SpeedupFleet100kVsSerialMerge float64            `json:"speedup_fleet_100k_vs_serial_merge,omitempty"`

	// CloudTier is the routing-tier microbenchmark: per-router dispatch
	// cost and batched-vs-unbatched modeled teacher throughput.
	CloudTier *CloudTierPerf `json:"cloud_tier,omitempty"`

	// Exact and Fast are the two compute tiers' training trajectories,
	// measured back to back on this machine; SpeedupFastOverExact is their
	// ns/step ratio (the CI fast-tier gate reads it) and
	// SpeedupFastVsBaseline is the fast tier against the frozen
	// pre-refactor baseline.
	Exact                 *TierPerf `json:"exact_tier,omitempty"`
	Fast                  *TierPerf `json:"fast_tier,omitempty"`
	SpeedupFastOverExact  float64   `json:"speedup_fast_over_exact,omitempty"`
	SpeedupFastVsBaseline float64   `json:"speedup_fast_vs_baseline,omitempty"`

	// TeacherBatch is the slab-batched teacher labeling measurement.
	TeacherBatch *TeacherBatchPerf `json:"teacher_batch,omitempty"`
}

// measureTrainTier benchmarks the steady-state adaptive-training step on
// one compute tier at the paper's configuration (8 epochs, 64-sample
// mini-batches, warm 1500-sample replay memory on the UA-DETRAC profile).
// Every tier gets an identically seeded fresh trainer, so the numbers
// differ by kernels alone.
func measureTrainTier(compute nn.Compute, workers int) TierPerf {
	p := video.DETRACProfile()
	rng := rand.New(rand.NewPCG(7, 8))
	student := detect.NewStudent(p.FeatureDim(), p.NumClasses(), rng)
	cfg := detect.DefaultTrainerConfig()
	cfg.Compute = compute
	cfg.AccumWorkers = workers
	tr := detect.NewTrainer(student, cfg, rand.New(rand.NewPCG(9, 10)))
	for i := 0; i < 4; i++ {
		tr.RunSession(perfBatch(p, 300, rng))
	}
	batch := perfBatch(p, 64, rng)
	stepsPerSession := tr.RunSession(batch).Steps

	tp := TierPerf{Tier: compute.String(), Workers: workers}
	if compute.Fast {
		tp.Tier, tp.Lane = "fast", compute.Lane.String()
	}
	train := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.RunSession(batch)
		}
	})
	if stepsPerSession > 0 {
		tp.TrainNsPerStep = float64(train.NsPerOp()) / float64(stepsPerSession)
		if tp.TrainNsPerStep > 0 {
			tp.TrainStepsPerSec = 1e9 / tp.TrainNsPerStep
		}
	}
	tp.TrainAllocsPerSession = train.AllocsPerOp()
	tp.TrainBytesPerSession = train.AllocedBytesPerOp()
	return tp
}

// measureTeacherBatch compares per-frame labeling against slab-batched
// labeling over the same 16-frame batch on identically seeded labelers.
func measureTeacherBatch() TeacherBatchPerf {
	p := video.DETRACProfile()
	stream := video.NewStream(p, 5)
	frames := make([]*video.Frame, 16)
	for i := range frames {
		frames[i] = stream.Next()
	}
	mkLabeler := func() *cloud.Labeler {
		return cloud.NewLabeler(detect.NewTeacher(p, rand.New(rand.NewPCG(15, 16))), cloud.DefaultLabelerConfig())
	}

	perLab := mkLabeler()
	perFrame := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range frames {
				perLab.LabelFrame(f)
			}
		}
	})
	batchLab := mkLabeler()
	batched := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batchLab.LabelBatch(frames)
		}
	})

	tb := TeacherBatchPerf{
		PerFrameNsPerFrame: float64(perFrame.NsPerOp()) / float64(len(frames)),
		BatchedNsPerFrame:  float64(batched.NsPerOp()) / float64(len(frames)),
	}
	if tb.BatchedNsPerFrame > 0 {
		tb.Speedup = round2(tb.PerFrameNsPerFrame / tb.BatchedNsPerFrame)
	}
	return tb
}

// measurePerf benchmarks the compute core's remaining hot paths —
// single-frame inference and the cloud scheduling engine — and mirrors the
// exact tier's training numbers into the legacy record fields.
func measurePerf(label string, exact TierPerf) PerfRecord {
	p := video.DETRACProfile()
	rng := rand.New(rand.NewPCG(7, 8))
	student := detect.NewStudent(p.FeatureDim(), p.NumClasses(), rng)

	rec := PerfRecord{Label: label}
	rec.TrainNsPerStep = exact.TrainNsPerStep
	rec.TrainStepsPerSec = exact.TrainStepsPerSec
	rec.TrainAllocsPerSession = exact.TrainAllocsPerSession
	rec.TrainBytesPerSession = exact.TrainBytesPerSession

	stream := video.NewStream(p, 1)
	frame := stream.Next()
	student.Infer(frame)
	infer := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			student.Infer(frame)
		}
	})
	rec.InferNsPerFrame = float64(infer.NsPerOp())
	if rec.InferNsPerFrame > 0 {
		rec.InferFramesPerSec = 1e9 / rec.InferNsPerFrame
	}
	rec.InferAllocsPerOp = infer.AllocsPerOp()

	rec.CloudSchedFIFONsPerBatch = measureCloudSched("fifo")
	rec.CloudSchedWFQNsPerBatch = measureCloudSched("wfq")
	return rec
}

// measureCloudSched benchmarks the cloud scheduling engine: one 4-frame
// batch through admission, worker assignment, (for deferred policies)
// dispatch selection, and teacher labeling, on an 8-device service with 2
// workers and a bounded queue kept near-full — the cluster hot path that
// every labeled batch crosses.
func measureCloudSched(policy string) float64 {
	p := video.DETRACProfile()
	svc := cloud.NewService(cloud.ServiceConfig{QueueCap: 16, Policy: policy, Workers: 2})
	sched := sim.NewScheduler()
	svc.Bind(sched)
	const nDev = 8
	devs := make([]*cloud.ServiceDevice, nDev)
	for i := range devs {
		teacher := detect.NewTeacher(p, rand.New(rand.NewPCG(11, uint64(i))))
		d, err := svc.Register(fmt.Sprintf("bench-%d", i), teacher, cloud.DefaultLabelerConfig(), nil)
		if err != nil {
			panic(err)
		}
		devs[i] = d
	}
	stream := video.NewStream(p, 5)
	frames := make([]*video.Frame, 4)
	for i := range frames {
		frames[i] = stream.Next()
	}

	// Arrivals slightly above the 2-worker service rate (0.08 s vs the
	// 0.09 s/batch pool throughput) sustain a genuine backlog, capped by
	// QueueCap, so deferred policies pay their real selection cost over a
	// full pending queue instead of a trivially empty one.
	now, i := 0.0, 0
	res := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			now += 0.08
			devs[i%nDev].Enqueue(frames, now, func(cloud.BatchResult) {})
			i++
			sched.AdvanceTo(now)
		}
	})
	return float64(res.NsPerOp())
}

// measureCloudTier benchmarks the routing tier: per-router dispatch cost on
// a contended 3-replica tier, then modeled teacher throughput with 4-way
// cross-device batching on vs off at an identical 1-replica configuration.
func measureCloudTier() CloudTierPerf {
	tier := CloudTierPerf{RouterNsPerDispatch: make(map[string]float64)}
	for _, router := range cloud.RouterNames() {
		tier.RouterNsPerDispatch[router] = round2(measureTierRouting(router))
	}
	unbatched, _ := measureTierThroughput(0)
	batched, forwards := measureTierThroughput(4)
	tier.UnbatchedBatchesPerBusySec = round2(unbatched)
	tier.BatchedBatchesPerBusySec = round2(batched)
	tier.CoalescedForwards = forwards
	if unbatched > 0 {
		tier.BatchingSpeedup = round2(batched / unbatched)
	}
	return tier
}

// measureTierRouting is measureCloudSched across replicas: one 4-frame
// batch through token-free admission, the named router's Pick over three
// replica snapshots, worker assignment and teacher labeling, on a
// contended 8-device tier.
func measureTierRouting(router string) float64 {
	p := video.DETRACProfile()
	tier := cloud.NewTier(cloud.TierConfig{
		Replicas: 3,
		Router:   router,
		Service:  cloud.ServiceConfig{QueueCap: 16, Workers: 2},
	})
	sched := sim.NewScheduler()
	tier.Bind(sched)
	const nDev = 8
	devs := make([]*cloud.TierDevice, nDev)
	for i := range devs {
		teacher := detect.NewTeacher(p, rand.New(rand.NewPCG(11, uint64(i))))
		d, err := tier.Register(fmt.Sprintf("bench-%d", i), teacher, cloud.DefaultLabelerConfig(), nil, cloud.DeviceOptions{})
		if err != nil {
			panic(err)
		}
		devs[i] = d
	}
	stream := video.NewStream(p, 5)
	frames := make([]*video.Frame, 4)
	for i := range frames {
		frames[i] = stream.Next()
	}

	// Arrivals slightly above the 3-replica service rate keep every
	// replica's queue non-trivial, so routers rank genuinely loaded
	// snapshots.
	now, i := 0.0, 0
	res := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			now += 0.03
			devs[i%nDev].Enqueue(frames, now, func(cloud.BatchResult) {})
			i++
			sched.AdvanceTo(now)
		}
	})
	return float64(res.NsPerOp())
}

// measureTierThroughput runs 400 dense 4-frame batches through a 1-replica
// FIFO tier and reports modeled teacher throughput — batches served per
// teacher-busy second — plus the number of coalesced forwards. coalesce 0
// is the unbatched reference; coalesce B prices each group's riders at the
// marginal batching cost, which is exactly the throughput gain being
// measured. Virtual-time, fully deterministic: no wall clock involved.
func measureTierThroughput(coalesce int) (float64, int) {
	p := video.DETRACProfile()
	tier := cloud.NewTier(cloud.TierConfig{
		Replicas: 1,
		Service:  cloud.ServiceConfig{Policy: "fifo", Workers: 1, Coalesce: coalesce},
	})
	sched := sim.NewScheduler()
	tier.Bind(sched)
	const nDev = 8
	devs := make([]*cloud.TierDevice, nDev)
	for i := range devs {
		teacher := detect.NewTeacher(p, rand.New(rand.NewPCG(13, uint64(i))))
		d, err := tier.Register(fmt.Sprintf("tput-%d", i), teacher, cloud.DefaultLabelerConfig(), nil, cloud.DeviceOptions{})
		if err != nil {
			panic(err)
		}
		devs[i] = d
	}
	stream := video.NewStream(p, 5)
	frames := make([]*video.Frame, 4)
	for i := range frames {
		frames[i] = stream.Next()
	}

	// All arrivals land before any service completes, so the pending queue
	// stays deep enough for every coalesced group to fill to the bound.
	now := 0.0
	for n := 0; n < 400; n++ {
		now += 0.0001
		devs[n%nDev].Enqueue(frames, now, func(cloud.BatchResult) {})
	}
	sched.AdvanceTo(now + 1e6)
	st := tier.TierStats()
	if st.BusySeconds <= 0 {
		return 0, st.CoalescedForwards
	}
	return float64(st.Batches) / st.BusySeconds, st.CoalescedForwards
}

// perfBatch synthesises labeled regions from the profile's pretrain
// distribution, mirroring the fixture of the BenchmarkStep tests.
func perfBatch(p *video.Profile, n int, rng *rand.Rand) []detect.LabeledRegion {
	set := video.GeneratePretrainSet(p, n, rng)
	out := make([]detect.LabeledRegion, len(set))
	for i, smp := range set {
		out[i] = detect.LabeledRegion{
			Features: smp.Features,
			Class:    smp.Class,
			Offset:   smp.Offset,
			HasBox:   smp.HasBox,
		}
	}
	return out
}

// runPerf refreshes the "current" record of BENCH_core.json, preserving the
// frozen pre-refactor baseline, and prints a one-screen summary. Every
// derived speedup is recomputed from the numbers just measured — nothing in
// the file is allowed to go stale. minFastSpeedup > 0 turns the fast tier's
// ns/step ratio over exact into a hard gate (skipped without the AVX2+FMA
// microkernels, whose absence would make the ratio a property of the
// machine, not the code).
func runPerf(path string, minFastSpeedup float64) error {
	var file PerfFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	}
	if file.Schema == 0 {
		file.Schema = 1
	}
	file.Note = "Compute-core perf trajectory. 'baseline' is the frozen pre-workspace-refactor " +
		"measurement; refresh everything else with: shoggoth-bench -perf. Paper config: 8 epochs, " +
		"64-sample mini-batches, warm 1500-sample replay memory, UA-DETRAC profile. " +
		"'exact_tier'/'fast_tier' are the two compute tiers measured back to back."

	exact := measureTrainTier(nn.Compute{}, 0)
	fast := measureTrainTier(nn.Compute{Fast: true, Lane: tensor.LaneF64}, 1)
	file.Exact, file.Fast = &exact, &fast
	if fast.TrainNsPerStep > 0 {
		file.SpeedupFastOverExact = round2(exact.TrainNsPerStep / fast.TrainNsPerStep)
	}

	rec := measurePerf("workspace-buffered compute core", exact)
	file.Current = &rec
	tb := measureTeacherBatch()
	file.TeacherBatch = &tb
	fleet, err := measureFleet()
	if err != nil {
		return err
	}
	file.Fleet = fleet
	file.SpeedupFleet10k = fleetSpeedup(fleet, 10_000)
	f100k, err := measureFleetCapped(100_000, 0.02)
	if err != nil {
		return err
	}
	file.Fleet100k = &f100k
	if f100k.EventsPerSec > 0 {
		file.SpeedupFleet100kVsSerialMerge = round2(f100k.EventsPerSec / serialMergeBaseline100k)
	}
	fmt.Printf("perf: fleet 100k capped %7.1fvs %7.1fs wall  %12d events  %12.0f ev/s\n",
		f100k.VirtualSec, f100k.WallSec, f100k.Events, f100k.EventsPerSec)
	f1m, err := measureFleet1M()
	if err != nil {
		return err
	}
	file.Fleet1M = &f1m
	ct := measureCloudTier()
	file.CloudTier = &ct
	if b := file.Baseline; b != nil {
		if rec.TrainNsPerStep > 0 {
			file.SpeedupTrainNsPerStep = round2(b.TrainNsPerStep / rec.TrainNsPerStep)
		}
		if fast.TrainNsPerStep > 0 {
			file.SpeedupFastVsBaseline = round2(b.TrainNsPerStep / fast.TrainNsPerStep)
		}
		if rec.InferNsPerFrame > 0 {
			file.SpeedupInferNsPerOp = round2(b.InferNsPerFrame / rec.InferNsPerFrame)
		}
		if rec.TrainAllocsPerSession > 0 {
			file.AllocReductionTrain = round2(float64(b.TrainAllocsPerSession) / float64(rec.TrainAllocsPerSession))
		}
	}

	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("perf: exact train %.0f ns/step (%.0f steps/s), %d allocs/session\n",
		exact.TrainNsPerStep, exact.TrainStepsPerSec, exact.TrainAllocsPerSession)
	fmt.Printf("perf: fast  train %.0f ns/step (%.0f steps/s), %d allocs/session — %.2fx over exact\n",
		fast.TrainNsPerStep, fast.TrainStepsPerSec, fast.TrainAllocsPerSession, file.SpeedupFastOverExact)
	fmt.Printf("perf: infer %.0f ns/frame (%.0f frames/s), %d allocs/frame\n",
		rec.InferNsPerFrame, rec.InferFramesPerSec, rec.InferAllocsPerOp)
	fmt.Printf("perf: teacher labeling %.0f -> %.0f ns/frame slab-batched (%.2fx)\n",
		tb.PerFrameNsPerFrame, tb.BatchedNsPerFrame, tb.Speedup)
	fmt.Printf("perf: cloud scheduling %.0f ns/batch (fifo), %.0f ns/batch (wfq, contended dispatch)\n",
		rec.CloudSchedFIFONsPerBatch, rec.CloudSchedWFQNsPerBatch)
	fmt.Printf("perf: cloud tier routing rr=%.0f ll=%.0f da=%.0f ns/dispatch; teacher batching %.1f -> %.1f batches/busy-sec (%.2fx, %d coalesced forwards)\n",
		ct.RouterNsPerDispatch["round-robin"], ct.RouterNsPerDispatch["least-loaded"], ct.RouterNsPerDispatch["domain-affinity"],
		ct.UnbatchedBatchesPerBusySec, ct.BatchedBatchesPerBusySec, ct.BatchingSpeedup, ct.CoalescedForwards)
	if file.Baseline != nil {
		fmt.Printf("perf: vs baseline — exact %.2fx ns/step, fast %.2fx ns/step, infer %.2fx ns/frame, %.0fx fewer train allocs\n",
			file.SpeedupTrainNsPerStep, file.SpeedupFastVsBaseline, file.SpeedupInferNsPerOp, file.AllocReductionTrain)
	}
	if file.SpeedupFleet10k > 0 {
		fmt.Printf("perf: fleet event engine %.1fx stepper events/sec at 10k devices\n", file.SpeedupFleet10k)
	}
	if file.SpeedupFleet100kVsSerialMerge > 0 {
		fmt.Printf("perf: fleet 100k engine %.1fx the frozen serial-merge baseline (%.0f ev/s)\n",
			file.SpeedupFleet100kVsSerialMerge, serialMergeBaseline100k)
	}
	if file.Fleet1M != nil {
		fmt.Printf("perf: fleet 1M %.0f ev/s, merge phase %.1f%% of engine wall time\n",
			file.Fleet1M.EventsPerSec, file.Fleet1M.MergePhaseShare)
	}
	fmt.Printf("perf: wrote %s\n", path)

	if minFastSpeedup > 0 {
		if !tensor.FastAccelerated() {
			fmt.Printf("perf: fast-tier gate skipped (no AVX2+FMA microkernels on this machine)\n")
		} else if file.SpeedupFastOverExact < minFastSpeedup {
			return fmt.Errorf("fast tier gate: %.2fx over exact, need >= %.2fx", file.SpeedupFastOverExact, minFastSpeedup)
		} else {
			fmt.Printf("perf: fast-tier gate passed (%.2fx >= %.2fx)\n", file.SpeedupFastOverExact, minFastSpeedup)
		}
	}
	return nil
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
