package main

import (
	"context"
	"fmt"
	"time"

	"shoggoth"
)

// FleetPerfRecord is one fleet-scale measurement: a rush-hour cluster at
// events fidelity, driven by either the discrete-event engine or the
// legacy frame stepper, at a given device count.
type FleetPerfRecord struct {
	Devices int    `json:"devices"`
	Engine  string `json:"engine"`
	// VirtualSec is the simulated horizon; WallSec what it cost to run.
	VirtualSec float64 `json:"virtual_sec"`
	WallSec    float64 `json:"wall_sec"`
	// Events counts discrete events executed: for the event engine the
	// EngineInfo total (frames + device-local + shared events); for the
	// stepper the frames stepped (each Step executes its due events
	// inline), the closest observable equivalent.
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Truncated marks stepper rows measured on a shortened virtual horizon:
	// the stepper's O(devices) scan per frame makes the full horizon
	// unbenchable at fleet scale. Events/sec is a rate, so rows stay
	// comparable; wall seconds are not.
	Truncated bool `json:"truncated,omitempty"`
}

// fleetPlan is one device-count cell of the fleet benchmark. The stepper
// horizon shrinks with fleet size (marked Truncated) so each stepper row
// still costs tens of seconds, not hours.
type fleetPlan struct {
	devices       int
	engineCycles  float64
	stepperCycles float64
}

var fleetPlans = []fleetPlan{
	{devices: 1_000, engineCycles: 0.05, stepperCycles: 0.05},
	{devices: 10_000, engineCycles: 0.05, stepperCycles: 0.002},
	{devices: 100_000, engineCycles: 0.02, stepperCycles: 0.0001},
}

// measureFleet times rush-hour clusters at 1k/10k/100k devices, events
// fidelity, event engine vs legacy frame stepper.
func measureFleet() ([]FleetPerfRecord, error) {
	sc, err := shoggoth.ScenarioByName("rush-hour")
	if err != nil {
		return nil, err
	}
	var out []FleetPerfRecord
	for _, plan := range fleetPlans {
		for _, engine := range []string{shoggoth.EngineEvent, shoggoth.EngineFrameStep} {
			cycles := plan.engineCycles
			if engine == shoggoth.EngineFrameStep {
				cycles = plan.stepperCycles
			}
			cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, plan.devices,
				shoggoth.WithSeed(11), shoggoth.WithCycles(cycles),
				shoggoth.WithFidelity(shoggoth.FidelityEvents))
			if err != nil {
				return nil, err
			}
			for i := range cfgs {
				cfgs[i].UploadMaxWaitSec = 5 // short horizons must still exercise the cloud path
			}
			start := time.Now()
			res, err := (&shoggoth.Cluster{Engine: engine}).Run(context.Background(), cfgs)
			if err != nil {
				return nil, fmt.Errorf("fleet bench %s @ %d devices: %w", engine, plan.devices, err)
			}
			wall := time.Since(start).Seconds()

			rec := FleetPerfRecord{
				Devices:    plan.devices,
				Engine:     engine,
				VirtualSec: cfgs[0].DurationSec,
				WallSec:    round2(wall),
				Truncated:  engine == shoggoth.EngineFrameStep && cycles != plan.engineCycles,
			}
			if res.Engine != nil {
				rec.Events = res.Engine.Events
			} else {
				for _, d := range res.Devices {
					rec.Events += int64(d.FramesTotal)
				}
			}
			if wall > 0 {
				rec.EventsPerSec = round2(float64(rec.Events) / wall)
			}
			out = append(out, rec)
			fmt.Printf("perf: fleet %-10s %6dd %7.1fvs %7.1fs wall  %12d events  %12.0f ev/s%s\n",
				engine, plan.devices, rec.VirtualSec, wall, rec.Events, rec.EventsPerSec,
				map[bool]string{true: "  (truncated horizon)"}[rec.Truncated])
		}
	}
	return out, nil
}

// fleetSpeedup returns engine-vs-stepper events/sec at the given device
// count (0 when either row is missing).
func fleetSpeedup(recs []FleetPerfRecord, devices int) float64 {
	var eng, step float64
	for _, r := range recs {
		if r.Devices != devices {
			continue
		}
		switch r.Engine {
		case shoggoth.EngineEvent:
			eng = r.EventsPerSec
		case shoggoth.EngineFrameStep:
			step = r.EventsPerSec
		}
	}
	if eng <= 0 || step <= 0 {
		return 0
	}
	return round2(eng / step)
}
