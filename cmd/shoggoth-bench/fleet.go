package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"shoggoth"
)

// FleetPerfRecord is one fleet-scale measurement: a rush-hour cluster at
// events fidelity, driven by either the discrete-event engine or the
// legacy frame stepper, at a given device count.
type FleetPerfRecord struct {
	Devices int    `json:"devices"`
	Engine  string `json:"engine"`
	// VirtualSec is the simulated horizon; WallSec what it cost to run.
	VirtualSec float64 `json:"virtual_sec"`
	WallSec    float64 `json:"wall_sec"`
	// Events counts discrete events executed: for the event engine the
	// EngineInfo total (frames + device-local + shared events); for the
	// stepper the frames stepped (each Step executes its due events
	// inline), the closest observable equivalent.
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Truncated marks stepper rows measured on a shortened virtual horizon:
	// the stepper's O(devices) scan per frame makes the full horizon
	// unbenchable at fleet scale. Events/sec is a rate, so rows stay
	// comparable; wall seconds are not.
	Truncated bool `json:"truncated,omitempty"`
}

// fleetPlan is one device-count cell of the fleet benchmark. The stepper
// horizon shrinks with fleet size (marked Truncated) so each stepper row
// still costs tens of seconds, not hours.
type fleetPlan struct {
	devices       int
	engineCycles  float64
	stepperCycles float64
}

var fleetPlans = []fleetPlan{
	{devices: 1_000, engineCycles: 0.05, stepperCycles: 0.05},
	{devices: 10_000, engineCycles: 0.05, stepperCycles: 0.002},
	{devices: 100_000, engineCycles: 0.02, stepperCycles: 0.0001},
}

// measureFleet times rush-hour clusters at 1k/10k/100k devices, events
// fidelity, event engine vs legacy frame stepper.
func measureFleet() ([]FleetPerfRecord, error) {
	sc, err := shoggoth.ScenarioByName("rush-hour")
	if err != nil {
		return nil, err
	}
	var out []FleetPerfRecord
	for _, plan := range fleetPlans {
		for _, engine := range []string{shoggoth.EngineEvent, shoggoth.EngineFrameStep} {
			cycles := plan.engineCycles
			if engine == shoggoth.EngineFrameStep {
				cycles = plan.stepperCycles
			}
			cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, plan.devices,
				shoggoth.WithSeed(11), shoggoth.WithCycles(cycles),
				shoggoth.WithFidelity(shoggoth.FidelityEvents))
			if err != nil {
				return nil, err
			}
			for i := range cfgs {
				cfgs[i].UploadMaxWaitSec = 5 // short horizons must still exercise the cloud path
			}
			start := time.Now()
			res, err := (&shoggoth.Cluster{Engine: engine}).Run(context.Background(), cfgs)
			if err != nil {
				return nil, fmt.Errorf("fleet bench %s @ %d devices: %w", engine, plan.devices, err)
			}
			wall := time.Since(start).Seconds()

			rec := FleetPerfRecord{
				Devices:    plan.devices,
				Engine:     engine,
				VirtualSec: cfgs[0].DurationSec,
				WallSec:    round2(wall),
				Truncated:  engine == shoggoth.EngineFrameStep && cycles != plan.engineCycles,
			}
			if res.Engine != nil {
				rec.Events = res.Engine.Events
			} else {
				for _, d := range res.Devices {
					rec.Events += int64(d.FramesTotal)
				}
			}
			if wall > 0 {
				rec.EventsPerSec = round2(float64(rec.Events) / wall)
			}
			out = append(out, rec)
			fmt.Printf("perf: fleet %-10s %6dd %7.1fvs %7.1fs wall  %12d events  %12.0f ev/s%s\n",
				engine, plan.devices, rec.VirtualSec, wall, rec.Events, rec.EventsPerSec,
				map[bool]string{true: "  (truncated horizon)"}[rec.Truncated])
		}
	}
	return out, nil
}

// serialMergeBaseline100k freezes the 100k-device event-engine throughput
// (events/sec) measured before the hierarchical outbox merge and analytic
// cloud costing landed — the serial device-index drain with an executed
// teacher, the best the engine could then do on this workload. The
// recomputed speedup in BENCH_core.json compares the capped fleet-scale
// operating point (measureFleetCapped) against this constant, so the
// rebuild's gain can never silently go stale.
const serialMergeBaseline100k = 605_994.53

// Fleet1MPerfRecord is one capped operating-point measurement: a rush-hour
// cluster at events fidelity in AggregateOnly mode with a capped teacher
// queue. The -perf million-device run additionally records the engine's
// wall-clock phase split so the merge tree's share of the run is visible
// in the trajectory; the 100k acceptance record and the CI smoke reuse the
// same shape without phases.
type Fleet1MPerfRecord struct {
	Devices      int     `json:"devices"`
	VirtualSec   float64 `json:"virtual_sec"`
	WallSec      float64 `json:"wall_sec"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Phase split in wall seconds, and the merge phase's share of the three.
	// Only the -perf 1M run wires the perf clock; the CI smoke leaves these out.
	AdvanceSec      float64 `json:"advance_sec,omitempty"`
	MergeSec        float64 `json:"merge_sec,omitempty"`
	SerialSec       float64 `json:"serial_sec,omitempty"`
	MergePhaseShare float64 `json:"merge_phase_share,omitempty"`
}

// fleetCluster builds the canonical fleet-scale measurement cluster: rush
// hour at events fidelity, uploads flushed inside the horizon, teacher queue
// capped so pending state stays O(cap) at any fleet size.
func fleetCluster(devices int, cycles float64) ([]shoggoth.Config, *shoggoth.Cluster, error) {
	sc, err := shoggoth.ScenarioByName("rush-hour")
	if err != nil {
		return nil, nil, err
	}
	cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, devices,
		shoggoth.WithSeed(11), shoggoth.WithCycles(cycles),
		shoggoth.WithFidelity(shoggoth.FidelityEvents))
	if err != nil {
		return nil, nil, err
	}
	for i := range cfgs {
		cfgs[i].UploadMaxWaitSec = 5
	}
	return cfgs, &shoggoth.Cluster{AggregateOnly: true, QueueCap: 256}, nil
}

// measureFleet1M runs the million-device cluster once and records its
// throughput and engine phase split.
func measureFleet1M() (Fleet1MPerfRecord, error) {
	const devices = 1_000_000
	cfgs, cluster, err := fleetCluster(devices, 0.01)
	if err != nil {
		return Fleet1MPerfRecord{}, err
	}
	clock := shoggoth.WallClock()
	for i := range cfgs {
		cfgs[i].PerfClock = clock
	}
	var phases shoggoth.EnginePhases
	cluster.Phases = &phases

	start := time.Now()
	res, err := cluster.Run(context.Background(), cfgs)
	if err != nil {
		return Fleet1MPerfRecord{}, fmt.Errorf("fleet 1M bench: %w", err)
	}
	wall := time.Since(start).Seconds()

	rec := Fleet1MPerfRecord{
		Devices:    devices,
		VirtualSec: cfgs[0].DurationSec,
		WallSec:    round2(wall),
		Events:     res.Engine.Events,
		AdvanceSec: round2(phases.AdvanceSec),
		MergeSec:   round2(phases.MergeSec),
		SerialSec:  round2(phases.SerialSec),
	}
	if wall > 0 {
		rec.EventsPerSec = round2(float64(rec.Events) / wall)
	}
	if tot := phases.AdvanceSec + phases.MergeSec + phases.SerialSec; tot > 0 {
		rec.MergePhaseShare = round2(phases.MergeSec / tot * 100)
	}
	fmt.Printf("perf: fleet 1M %7.1fvs %7.1fs wall  %12d events  %12.0f ev/s  (advance %.1fs merge %.1fs serial %.1fs)\n",
		rec.VirtualSec, wall, rec.Events, rec.EventsPerSec, phases.AdvanceSec, phases.MergeSec, phases.SerialSec)
	return rec, nil
}

// measureFleetCapped runs the capped operating point once at the given
// fleet size and returns its throughput record (phase split unset).
func measureFleetCapped(devices int, cycles float64) (Fleet1MPerfRecord, error) {
	cfgs, cluster, err := fleetCluster(devices, cycles)
	if err != nil {
		return Fleet1MPerfRecord{}, err
	}
	start := time.Now()
	res, err := cluster.Run(context.Background(), cfgs)
	if err != nil {
		return Fleet1MPerfRecord{}, fmt.Errorf("fleet capped @ %d devices: %w", devices, err)
	}
	wall := time.Since(start).Seconds()
	rec := Fleet1MPerfRecord{
		Devices:    devices,
		VirtualSec: cfgs[0].DurationSec,
		WallSec:    round2(wall),
		Events:     res.Engine.Events,
	}
	if wall > 0 {
		rec.EventsPerSec = round2(float64(rec.Events) / wall)
	}
	return rec, nil
}

// runFleetSmoke is the CI gate: one capped 100k-device (by default)
// events-fidelity run, failing if throughput lands under the floor. The
// floor guards the hierarchical-merge + analytic-costing rebuild against
// regression without the cost of a full -perf sweep.
func runFleetSmoke(devices int, minEventsPerSec float64, outPath string) error {
	rec, err := measureFleetCapped(devices, 0.02)
	if err != nil {
		return fmt.Errorf("fleet smoke: %w", err)
	}
	evPerSec := rec.EventsPerSec
	fmt.Printf("fleet smoke: %d devices, %.1fvs in %.1fs wall — %d events, %.0f ev/s (%.1fx the frozen serial-merge 100k baseline)\n",
		devices, rec.VirtualSec, rec.WallSec, rec.Events, evPerSec, evPerSec/serialMergeBaseline100k)
	if outPath != "" {
		data, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("fleet smoke: wrote %s\n", outPath)
	}
	if minEventsPerSec > 0 && evPerSec < minEventsPerSec {
		return fmt.Errorf("fleet smoke gate: %.0f events/sec, need >= %.0f", evPerSec, minEventsPerSec)
	}
	return nil
}

// fleetSpeedup returns engine-vs-stepper events/sec at the given device
// count (0 when either row is missing).
func fleetSpeedup(recs []FleetPerfRecord, devices int) float64 {
	var eng, step float64
	for _, r := range recs {
		if r.Devices != devices {
			continue
		}
		switch r.Engine {
		case shoggoth.EngineEvent:
			eng = r.EventsPerSec
		case shoggoth.EngineFrameStep:
			step = r.EventsPerSec
		}
	}
	if eng <= 0 || step <= 0 {
		return 0
	}
	return round2(eng / step)
}
