// Command shoggoth-vet runs Shoggoth's static-analysis suite: the custom
// analyzers in internal/lint that machine-check the repository's determinism
// and hot-path contracts (DESIGN.md §10) — wall-clock purity of the sim
// path, the partitioned-RNG discipline, sorted map iteration, the
// zero-allocation hot path and mutex-free callback dispatch.
//
// Usage:
//
//	go run ./cmd/shoggoth-vet ./...
//	go run ./cmd/shoggoth-vet -analyzers wallclock,globalrand ./internal/core
//	go run ./cmd/shoggoth-vet -list
//
// Exit status is 1 when any diagnostic survives (findings must be fixed or
// carry a justified //shoggoth:allow <analyzer> -- <reason> directive).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shoggoth/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *names != "" {
		subset, ok := lint.ByName(strings.Split(*names, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "shoggoth-vet: unknown analyzer in %q (see -list)\n", *names)
			os.Exit(2)
		}
		analyzers = subset
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shoggoth-vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shoggoth-vet: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "shoggoth-vet: %d finding(s); fix them or justify with //shoggoth:allow <analyzer> -- <reason>\n", len(diags))
		os.Exit(1)
	}
}
