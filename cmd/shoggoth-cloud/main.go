// Command shoggoth-cloud runs the cloud half of the Shoggoth protocol as a
// real HTTP service: online labeling by the shared teacher model plus the
// per-device sampling-rate controller. Pair it with cmd/shoggoth-edge.
//
//	shoggoth-cloud -addr :8700 -profile ua-detrac
package main

import (
	"flag"
	"log"
	"net/http"

	"shoggoth/internal/cloud"
	"shoggoth/internal/rpc"
	"shoggoth/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-cloud: ")

	addr := flag.String("addr", ":8700", "listen address")
	profileName := flag.String("profile", video.ProfileDETRAC, "dataset profile the edges stream")
	seed := flag.Uint64("seed", 7, "teacher seed")
	queueCap := flag.Int("queue-cap", 0, "per-replica labeling queue capacity in batches; overflow answers 429 (0 = unbounded)")
	workers := flag.Int("workers", 1, "modeled teacher pipeline workers per replica")
	replicas := flag.Int("replicas", 1, "teacher replicas in the routing tier")
	router := flag.String("router", "", "replica router (round-robin, least-loaded, domain-affinity; empty = round-robin)")
	admitRate := flag.Float64("admit-rate", 0, "token-bucket admission rate in requests/sec (0 = no admission control)")
	admitBurst := flag.Float64("admit-burst", 0, "token-bucket burst capacity in requests (<1 clamps to 1)")
	computeTier := flag.String("compute-tier", "", "teacher math tier: exact (frame-at-a-time, the default) or fast (batched labeling through one label slab; bit-identical output)")
	flag.Parse()

	profile, err := video.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	if err := cloud.ValidateRouter(*router); err != nil {
		log.Fatal(err)
	}
	switch *computeTier {
	case "", "exact", "fast":
	default:
		log.Fatalf("unknown -compute-tier %q (want exact or fast)", *computeTier)
	}
	srv := rpc.NewServerOpts(profile, *seed, rpc.ServerOptions{
		QueueCap:        *queueCap,
		Workers:         *workers,
		Replicas:        *replicas,
		Router:          *router,
		AdmitRatePerSec: *admitRate,
		AdmitBurst:      *admitBurst,
		ComputeTier:     *computeTier,
	})
	log.Printf("serving %s labeling + rate control on %s (%d replica(s), queue cap %d, %d workers)",
		profile.Name, *addr, max(*replicas, 1), *queueCap, *workers)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
