// Command shoggoth-cloud runs the cloud half of the Shoggoth protocol as a
// real HTTP service: online labeling by the shared teacher model plus the
// per-device sampling-rate controller. Pair it with cmd/shoggoth-edge.
//
//	shoggoth-cloud -addr :8700 -profile ua-detrac
package main

import (
	"flag"
	"log"
	"net/http"

	"shoggoth/internal/rpc"
	"shoggoth/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-cloud: ")

	addr := flag.String("addr", ":8700", "listen address")
	profileName := flag.String("profile", video.ProfileDETRAC, "dataset profile the edges stream")
	seed := flag.Uint64("seed", 7, "teacher seed")
	queueCap := flag.Int("queue-cap", 0, "labeling queue capacity in batches; overflow answers 429 (0 = unbounded)")
	workers := flag.Int("workers", 1, "modeled teacher pipeline workers")
	flag.Parse()

	profile, err := video.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	srv := rpc.NewServerOpts(profile, *seed, rpc.ServerOptions{QueueCap: *queueCap, Workers: *workers})
	log.Printf("serving %s labeling + rate control on %s (queue cap %d, %d workers)",
		profile.Name, *addr, *queueCap, *workers)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
