// Command shoggoth-edge runs the edge half of the Shoggoth protocol against
// a shoggoth-cloud server: real-time inference over a drifting synthetic
// stream, adaptive frame sampling at the cloud-commanded rate, and
// latent-replay fine-tuning on the labels the cloud returns.
//
//	shoggoth-edge -cloud http://localhost:8700 -profile ua-detrac -duration 480
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"shoggoth/internal/detect"
	"shoggoth/internal/edge"
	"shoggoth/internal/metrics"
	"shoggoth/internal/rpc"
	"shoggoth/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-edge: ")

	cloudURL := flag.String("cloud", "http://localhost:8700", "cloud server base URL")
	profileName := flag.String("profile", video.ProfileDETRAC, "dataset profile to stream")
	device := flag.String("device", "edge-1", "device id")
	duration := flag.Float64("duration", 480, "stream seconds to process")
	seed := flag.Uint64("seed", 1, "stream seed")
	batchFrames := flag.Int("batch", 40, "labeled frames per training session")
	flag.Parse()

	profile, err := video.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pretraining student for %s…", profile.Name)
	// The canonical offline pretraining path: a live edge deploys exactly
	// the model the simulation's deployments start from. The trainer gets
	// the same seed stream the sim's edge trainers use (run seed, stream 4).
	student := detect.DefaultPretrainedStudent(profile)
	trainer := detect.NewTrainer(student, detect.DefaultTrainerConfig(), rand.New(rand.NewPCG(*seed, 4)))
	sampler := edge.NewSampler(0.5)
	client := rpc.NewClient(*cloudURL, *device)

	stream := video.NewStream(profile, *seed)
	col := metrics.NewCollector()
	var alphaAcc metrics.Running
	var buffer []video.Frame
	var pending []detect.LabeledRegion
	pendingFrames, sessions := 0, 0

	frames := int(*duration * profile.FPS)
	// Backpressure deadline in WALL time: the cloud's queue drains in real
	// seconds (its service model runs on time.Since(start)), while this loop
	// burns through stream time much faster than wall time — a stream-time
	// pause would retry into a still-full queue.
	var retryUntil time.Time
	dropped := 0 // samples aged out of the buffer while paused
	log.Printf("streaming %d frames to %s as %q", frames, *cloudURL, *device)
	for i := 0; i < frames; i++ {
		f := stream.Next()
		inf := student.Infer(f)
		var gts []metrics.GT
		for _, pr := range f.Proposals {
			if pr.GT != nil {
				gts = append(gts, metrics.GT{Frame: f.Index, Class: pr.GT.Class, Box: pr.GT.Box})
			}
		}
		evs := make([]metrics.Det, len(inf.Detections))
		for j, d := range inf.Detections {
			evs[j] = metrics.Det{Frame: f.Index, Class: d.Class, Confidence: d.Confidence, Box: d.Box}
		}
		col.AddFrame(f.Index, f.Time, gts, evs)
		for _, c := range inf.Confidences {
			if c >= 0.5 {
				alphaAcc.Add(1)
			} else {
				alphaAcc.Add(0)
			}
		}

		if sampler.Sample(f.Time) {
			buffer = append(buffer, *f)
			// Under sustained backpressure the buffer must not grow without
			// bound, and the eventual retry must not be one giant batch
			// whose modeled service time re-overloads the queue: keep only
			// the freshest 60 samples (3 uploads' worth), dropping the
			// oldest — stale frames carry the least adaptation value anyway.
			if len(buffer) > 60 {
				dropped += len(buffer) - 60
				buffer = buffer[len(buffer)-60:]
			}
		}
		if len(buffer) >= 20 && !time.Now().Before(retryUntil) {
			resp, err := client.Label(buffer, alphaAcc.Mean(), 0.55)
			var bp *rpc.BackpressureError
			if errors.As(err, &bp) {
				// The cloud's labeling queue is full: keep the buffer and
				// honour the Retry-After hint before attempting again —
				// backpressure is load, not failure, and re-sending every
				// frame would only feed the overload.
				wait := bp.RetryAfter
				if wait < time.Second {
					wait = time.Second
				}
				retryUntil = time.Now().Add(wait)
				log.Printf("t=%5.1fs cloud backpressure, pausing uploads %v", f.Time, wait)
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			alphaAcc.Reset()
			for j := range buffer {
				pending = append(pending,
					detect.BuildTrainingBatch(&buffer[j], resp.Labels[j], profile.BackgroundClass())...)
			}
			uploaded := len(buffer)
			pendingFrames += uploaded
			buffer = buffer[:0]
			sampler.SetRate(resp.NewRate)
			log.Printf("t=%5.1fs labeled %d frames, φ=%.2f, rate → %.2f fps", f.Time, uploaded, resp.PhiMean, resp.NewRate)
		}
		if pendingFrames >= *batchFrames {
			stats := trainer.RunSession(pending)
			sessions++
			log.Printf("t=%5.1fs training session %d: %d samples, loss %.3f",
				f.Time, sessions, stats.NewSamples, stats.AvgClassLoss)
			pending = nil
			pendingFrames = 0
		}
	}

	if dropped > 0 {
		log.Printf("dropped %d stale samples while the cloud was backpressured", dropped)
	}
	fmt.Printf("device %s: mAP@0.5 %.1f%% over %d frames, %d sessions\n",
		*device, col.MAP50()*100, col.Frames(), sessions)
}
