// Command shoggoth-edge runs the edge half of the Shoggoth protocol against
// a shoggoth-cloud server: real-time inference over a drifting synthetic
// stream, adaptive frame sampling at the cloud-commanded rate, and
// latent-replay fine-tuning on the labels the cloud returns.
//
//	shoggoth-edge -cloud http://localhost:8700 -profile ua-detrac -duration 480
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	"shoggoth/internal/detect"
	"shoggoth/internal/edge"
	"shoggoth/internal/metrics"
	"shoggoth/internal/rpc"
	"shoggoth/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoggoth-edge: ")

	cloudURL := flag.String("cloud", "http://localhost:8700", "cloud server base URL")
	profileName := flag.String("profile", video.ProfileDETRAC, "dataset profile to stream")
	device := flag.String("device", "edge-1", "device id")
	duration := flag.Float64("duration", 480, "stream seconds to process")
	seed := flag.Uint64("seed", 1, "stream seed")
	batchFrames := flag.Int("batch", 40, "labeled frames per training session")
	flag.Parse()

	profile, err := video.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pretraining student for %s…", profile.Name)
	// The canonical offline pretraining path: a live edge deploys exactly
	// the model the simulation's deployments start from. The trainer gets
	// the same seed stream the sim's edge trainers use (run seed, stream 4).
	student := detect.DefaultPretrainedStudent(profile)
	trainer := detect.NewTrainer(student, detect.DefaultTrainerConfig(), rand.New(rand.NewPCG(*seed, 4)))
	sampler := edge.NewSampler(0.5)
	client := rpc.NewClient(*cloudURL, *device)

	stream := video.NewStream(profile, *seed)
	col := metrics.NewCollector()
	var alphaAcc metrics.Running
	var buffer []video.Frame
	var pending []detect.LabeledRegion
	pendingFrames, sessions := 0, 0

	frames := int(*duration * profile.FPS)
	log.Printf("streaming %d frames to %s as %q", frames, *cloudURL, *device)
	for i := 0; i < frames; i++ {
		f := stream.Next()
		inf := student.Infer(f)
		var gts []metrics.GT
		for _, pr := range f.Proposals {
			if pr.GT != nil {
				gts = append(gts, metrics.GT{Frame: f.Index, Class: pr.GT.Class, Box: pr.GT.Box})
			}
		}
		evs := make([]metrics.Det, len(inf.Detections))
		for j, d := range inf.Detections {
			evs[j] = metrics.Det{Frame: f.Index, Class: d.Class, Confidence: d.Confidence, Box: d.Box}
		}
		col.AddFrame(f.Index, f.Time, gts, evs)
		for _, c := range inf.Confidences {
			if c >= 0.5 {
				alphaAcc.Add(1)
			} else {
				alphaAcc.Add(0)
			}
		}

		if sampler.Sample(f.Time) {
			buffer = append(buffer, *f)
		}
		if len(buffer) >= 20 {
			resp, err := client.Label(buffer, alphaAcc.Mean(), 0.55)
			if err != nil {
				log.Fatal(err)
			}
			alphaAcc.Reset()
			for j := range buffer {
				pending = append(pending,
					detect.BuildTrainingBatch(&buffer[j], resp.Labels[j], profile.BackgroundClass())...)
			}
			pendingFrames += len(buffer)
			buffer = buffer[:0]
			sampler.SetRate(resp.NewRate)
			log.Printf("t=%5.1fs labeled 20 frames, φ=%.2f, rate → %.2f fps", f.Time, resp.PhiMean, resp.NewRate)
		}
		if pendingFrames >= *batchFrames {
			stats := trainer.RunSession(pending)
			sessions++
			log.Printf("t=%5.1fs training session %d: %d samples, loss %.3f",
				f.Time, sessions, stats.NewSamples, stats.AvgClassLoss)
			pending = nil
			pendingFrames = 0
		}
	}

	fmt.Printf("device %s: mAP@0.5 %.1f%% over %d frames, %d sessions\n",
		*device, col.MAP50()*100, col.Frames(), sessions)
}
