package shoggoth_test

import (
	"bytes"
	"context"
	"testing"

	"shoggoth"
)

// TestScenarioClusterDoubleRun is the end-to-end determinism harness backing
// the static analyzers (DESIGN.md §10): whatever contract the wallclock,
// globalrand and maprange rules fail to catch at lint time must still
// surface here at runtime. It executes the same multi-device Cluster
// scenario twice — a time-varying rush-hour network trace, three devices
// contending for one shared cloud — and requires the full Results JSON to
// match byte for byte. It runs even under -short, so CI's `go test -race
// ./...` always drives it with the race detector watching the shared cloud
// service and the worker pool.
func TestScenarioClusterDoubleRun(t *testing.T) {
	sc, err := shoggoth.ScenarioByName("rush-hour")
	if err != nil {
		t.Fatal(err)
	}
	var cache shoggoth.StudentCache
	run := func() ([]byte, *shoggoth.ClusterResults) {
		cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, 3,
			shoggoth.WithSeed(11), shoggoth.WithCycles(0.1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&shoggoth.Cluster{Cache: &cache}).Run(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return encodeJSON(t, res), res
	}
	first, res := run()
	second, _ := run()
	if !bytes.Equal(first, second) {
		t.Fatal("two identical scenario Cluster runs produced different ClusterResults JSON")
	}
	// The equality must be of a run that did real work, not of two empty runs.
	if len(res.Devices) != 3 {
		t.Fatalf("want 3 device results, got %d", len(res.Devices))
	}
	for i, d := range res.Devices {
		if d.SampledFrames == 0 {
			t.Errorf("device %d sampled no frames — the double run proved nothing", i)
		}
	}
}
