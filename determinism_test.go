package shoggoth_test

import (
	"bytes"
	"context"
	"testing"

	"shoggoth"
)

// TestScenarioClusterDoubleRun is the end-to-end determinism harness backing
// the static analyzers (DESIGN.md §10): whatever contract the wallclock,
// globalrand and maprange rules fail to catch at lint time must still
// surface here at runtime. It executes the same multi-device Cluster
// scenario twice — a time-varying rush-hour network trace, three devices
// contending for one shared cloud — and requires the full Results JSON to
// match byte for byte. It runs even under -short, so CI's `go test -race
// ./...` always drives it with the race detector watching the shared cloud
// service and the worker pool.
func TestScenarioClusterDoubleRun(t *testing.T) {
	sc, err := shoggoth.ScenarioByName("rush-hour")
	if err != nil {
		t.Fatal(err)
	}
	var cache shoggoth.StudentCache
	run := func() ([]byte, *shoggoth.ClusterResults) {
		cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, 3,
			shoggoth.WithSeed(11), shoggoth.WithCycles(0.1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&shoggoth.Cluster{Cache: &cache}).Run(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return encodeJSON(t, res), res
	}
	first, res := run()
	second, _ := run()
	if !bytes.Equal(first, second) {
		t.Fatal("two identical scenario Cluster runs produced different ClusterResults JSON")
	}
	// The equality must be of a run that did real work, not of two empty runs.
	if len(res.Devices) != 3 {
		t.Fatalf("want 3 device results, got %d", len(res.Devices))
	}
	for i, d := range res.Devices {
		if d.SampledFrames == 0 {
			t.Errorf("device %d sampled no frames — the double run proved nothing", i)
		}
	}
}

// TestFleetDeterminism10k is the tentpole determinism proof at fleet
// scale: a 10k-device rush-hour cluster at events fidelity, run twice
// serially and twice sharded across 8 engine workers, must produce
// byte-identical ClusterResults JSON every time. It runs even under
// -short, so CI's `go test -race ./...` drives the sharded engine — worker
// pool, outbox merges, shared scheduler — with the race detector watching.
func TestFleetDeterminism10k(t *testing.T) {
	sc, err := shoggoth.ScenarioByName("rush-hour")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]byte, *shoggoth.ClusterResults) {
		cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, 10_000,
			shoggoth.WithSeed(11), shoggoth.WithCycles(0.05), shoggoth.WithFidelity(shoggoth.FidelityEvents))
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			// Short horizon: flush upload buffers early so the cloud path
			// (queueing, labeling, training pricing) genuinely exercises.
			cfgs[i].UploadMaxWaitSec = 5
		}
		res, err := (&shoggoth.Cluster{EngineWorkers: workers}).Run(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return encodeJSON(t, res), res
	}
	serial, res := run(1)
	if len(res.Devices) != 10_000 {
		t.Fatalf("want 10000 device results, got %d", len(res.Devices))
	}
	var sampled int
	for _, d := range res.Devices {
		sampled += d.SampledFrames
	}
	if sampled == 0 || res.Cloud.Batches == 0 {
		t.Fatalf("fleet did no cloud work (sampled=%d batches=%d) — the double run proved nothing",
			sampled, res.Cloud.Batches)
	}
	if serial2, _ := run(1); !bytes.Equal(serial, serial2) {
		t.Fatal("two serial 10k-device runs produced different ClusterResults JSON")
	}
	if sharded, _ := run(8); !bytes.Equal(serial, sharded) {
		t.Fatal("EngineWorkers=8 changed the 10k-device ClusterResults")
	}
	if sharded2, _ := run(8); !bytes.Equal(serial, sharded2) {
		t.Fatal("second sharded 10k-device run diverged")
	}
}

// TestFleetDeterminismMega is the million-device proof (50k under -race;
// see determinism_scale_test.go): a rush-hour cluster at events fidelity in
// AggregateOnly mode, run serially and sharded across 8 engine workers,
// must produce byte-identical ClusterResults JSON — the hierarchical merge
// tree, analytic cloud costing and streaming Welford aggregation all sit on
// that path. Not -short-skipped: this is the scaling tentpole's regression
// harness. AggregateOnly keeps the run's memory at the fleet aggregate (not
// a million Results structs), and the tight QueueCap keeps the teacher
// queue O(cap) while every device's upload — admitted or dropped — still
// crosses the outbox merge and the shared timeline.
func TestFleetDeterminismMega(t *testing.T) {
	sc, err := shoggoth.ScenarioByName("rush-hour")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]byte, *shoggoth.ClusterResults) {
		cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, megaFleetDevices,
			shoggoth.WithSeed(11), shoggoth.WithCycles(0.01), shoggoth.WithFidelity(shoggoth.FidelityEvents))
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			cfgs[i].UploadMaxWaitSec = 5 // flush uploads inside the short horizon
		}
		res, err := (&shoggoth.Cluster{EngineWorkers: workers, AggregateOnly: true, QueueCap: 64}).
			Run(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return encodeJSON(t, res), res
	}
	serial, res := run(1)
	if res.Devices != nil {
		t.Fatalf("AggregateOnly run still carried %d device results", len(res.Devices))
	}
	if res.Fleet == nil || res.Fleet.Devices != megaFleetDevices {
		t.Fatalf("fleet aggregate missing or wrong size: %+v", res.Fleet)
	}
	if res.Fleet.SampledFrames.Mean == 0 || res.Cloud.Batches == 0 || res.Cloud.DroppedBatches == 0 {
		t.Fatalf("fleet did no cloud work (sampled mean=%v batches=%d dropped=%d) — the run proved nothing",
			res.Fleet.SampledFrames.Mean, res.Cloud.Batches, res.Cloud.DroppedBatches)
	}
	if sharded, _ := run(8); !bytes.Equal(serial, sharded) {
		t.Fatalf("EngineWorkers=8 changed the %d-device ClusterResults", megaFleetDevices)
	}
}

// TestMultiCloudTierDeterminism extends the determinism contract to the
// routed cloud tier: the multi-cloud scenario (3 replicas, domain-affinity
// routing, token-bucket admission, 3-way teacher batching, cold-start
// pricing) at events fidelity must produce byte-identical ClusterResults
// whether the engine runs serially or sharded across 8 workers — replica
// choice, bucket state and coalescing groups are all functions of the
// admitted batch sequence, never of engine interleaving. The run must also
// genuinely exercise the tier: several replicas served, batches coalesced,
// both SLO classes present.
func TestMultiCloudTierDeterminism(t *testing.T) {
	sc, err := shoggoth.ScenarioByName("multi-cloud")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]byte, *shoggoth.ClusterResults) {
		cfgs, err := shoggoth.ScenarioConfigs(sc, shoggoth.Shoggoth, 6,
			shoggoth.WithSeed(7), shoggoth.WithCycles(0.5), shoggoth.WithFidelity(shoggoth.FidelityEvents))
		if err != nil {
			t.Fatal(err)
		}
		// No cloud knobs on the Cluster: the shared tier adopts the scenario's
		// CloudSpec stamped into the device configs.
		res, err := (&shoggoth.Cluster{EngineWorkers: workers}).Run(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return encodeJSON(t, res), res
	}
	serial, res := run(1)
	if len(res.Cloud.Replicas) != 3 {
		t.Fatalf("want 3 replica stat blocks, got %d", len(res.Cloud.Replicas))
	}
	served := 0
	for _, r := range res.Cloud.Replicas {
		if r.Batches > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("only %d replicas served batches — routing proved nothing", served)
	}
	if res.Cloud.CoalescedForwards == 0 {
		t.Fatal("no coalesced forwards — cross-device batching never engaged")
	}
	for _, class := range []string{"premium", "standard"} {
		cs, ok := res.Cloud.SLOClasses[class]
		if !ok || cs.Batches == 0 {
			t.Fatalf("SLO class %q missing or empty: %+v", class, res.Cloud.SLOClasses)
		}
	}
	if res.Cloud.JainFairness <= 0 || res.Cloud.JainFairness > 1 {
		t.Fatalf("Jain fairness out of range: %v", res.Cloud.JainFairness)
	}
	if serial2, _ := run(1); !bytes.Equal(serial, serial2) {
		t.Fatal("two serial multi-cloud runs produced different ClusterResults JSON")
	}
	if sharded, _ := run(8); !bytes.Equal(serial, sharded) {
		t.Fatal("EngineWorkers=8 changed the multi-cloud ClusterResults")
	}
}
