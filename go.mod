module shoggoth

go 1.22
