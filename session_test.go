package shoggoth_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"shoggoth"
)

var (
	detracOnce sync.Once
	detracPre  *shoggoth.Config // template with a shared pretrained student
)

// testConfig returns a short-run config with a cached pretrained student so
// the suite pretrains once.
func testConfig(t *testing.T, kind shoggoth.StrategyKind, duration float64) shoggoth.Config {
	t.Helper()
	p, err := shoggoth.ProfileByName(shoggoth.ProfileDETRAC)
	if err != nil {
		t.Fatal(err)
	}
	detracOnce.Do(func() {
		cfg := shoggoth.NewConfig(shoggoth.EdgeOnly, p)
		cfg.Pretrained = shoggoth.PretrainedStudent(p)
		detracPre = &cfg
	})
	cfg := shoggoth.NewConfig(kind, p, shoggoth.WithDuration(duration))
	cfg.Pretrained = detracPre.Pretrained
	return cfg
}

// TestRunMatchesSessionForEveryStockStrategy is the API-redesign identity
// contract: the legacy blocking Run and the streaming Session (with an
// observer attached) must produce identical Results for the same
// (profile, strategy, seed).
func TestRunMatchesSessionForEveryStockStrategy(t *testing.T) {
	for _, kind := range []shoggoth.StrategyKind{
		shoggoth.EdgeOnly, shoggoth.CloudOnly, shoggoth.Prompt, shoggoth.AMS, shoggoth.Shoggoth,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := testConfig(t, kind, 90)

			legacy, err := shoggoth.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			sess, err := shoggoth.NewSession(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var windows []shoggoth.WindowScore
			var rates, sessions int
			sess.Observe(&shoggoth.ObserverFuncs{
				WindowMAP:       func(w shoggoth.WindowScore) { windows = append(windows, w) },
				RateCommand:     func(shoggoth.RatePoint) { rates++ },
				TrainingSession: func(shoggoth.SessionRecord) { sessions++ },
			})
			streamed, err := sess.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(legacy, streamed) {
				t.Fatalf("Run and Session diverged for %s:\n run: %+v\nsess: %+v", kind, legacy, streamed)
			}
			if !reflect.DeepEqual(windows, streamed.WindowMAPs) {
				t.Fatalf("streamed windows diverge from results:\nobs: %v\nres: %v", windows, streamed.WindowMAPs)
			}
			if rates != len(streamed.RateSeries) {
				t.Fatalf("observer saw %d rate commands, results hold %d", rates, len(streamed.RateSeries))
			}
			if sessions != len(streamed.SessionTimes) {
				t.Fatalf("observer saw %d training sessions, results hold %d", sessions, len(streamed.SessionTimes))
			}
		})
	}
}

func TestSessionStepAndResultsIdempotent(t *testing.T) {
	cfg := testConfig(t, shoggoth.EdgeOnly, 20)
	sess, err := shoggoth.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 1 // the final Step returns false after processing its frame
	for sess.Step() {
		steps++
	}
	if want := int(20 * cfg.Profile.FPS); steps != want {
		t.Fatalf("stepped %d frames, want %d", steps, want)
	}
	a := sess.Results()
	if sess.Step() {
		t.Fatal("Step after Results must report no frames remain")
	}
	if b := sess.Results(); b != a {
		t.Fatal("Results must be idempotent")
	}
	if a.FramesTotal != steps {
		t.Fatalf("results count %d frames, stepped %d", a.FramesTotal, steps)
	}
}

func TestPartialSessionSettlesAtElapsedTime(t *testing.T) {
	cfg := testConfig(t, shoggoth.CloudOnly, 60)
	sess, err := shoggoth.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := int(30 * cfg.Profile.FPS)
	for i := 0; i < half && sess.Step(); i++ {
	}
	res := sess.Results()
	if res.Duration > 30.1 || res.Duration < 29.9 {
		t.Fatalf("truncated run should settle at ~30s elapsed, got %v", res.Duration)
	}
	// Bandwidth rates must be over the elapsed time, not the configured 60s.
	full, err := shoggoth.Run(testConfig(t, shoggoth.CloudOnly, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.UpKbps < full.UpKbps*0.9 || res.UpKbps > full.UpKbps*1.1 {
		t.Fatalf("truncated-run uplink %v should match a 30s run's %v", res.UpKbps, full.UpKbps)
	}
}

func TestSessionRunContextCancellation(t *testing.T) {
	cfg := testConfig(t, shoggoth.EdgeOnly, 60)
	sess, err := shoggoth.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RunContext(ctx); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
