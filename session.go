package shoggoth

import (
	"context"

	"shoggoth/internal/core"
	"shoggoth/internal/metrics"
)

// Session is a streaming experiment run: where Run executes a deployment to
// completion in one blocking call, a Session advances frame by frame under
// caller control, surfaces events through an Observer while the stream
// plays, and cancels cleanly via RunContext. Run(cfg) is a thin wrapper
// over a Session and returns identical Results for the same config.
type Session struct {
	sys *core.System
}

// NewSession builds a deployment for the config without starting it.
func NewSession(cfg Config) (*Session, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{sys: sys}, nil
}

// Observe attaches a streaming observer. Call it before the first Step;
// observers are purely additive and never change the run's Results.
func (s *Session) Observe(o Observer) { s.sys.SetObserver(o) }

// Step advances the deployment by one camera frame (plus every cloud,
// network and training event due before it) and reports whether frames
// remain. Call Results once it returns false.
func (s *Session) Step() bool { return s.sys.Step() }

// Results finalizes the run and returns the aggregated results. A session
// stepped partway through its stream settles at the elapsed stream time
// (Duration and bandwidth rates describe what actually played); a
// completed one settles at the configured duration. Once called, the
// session is closed — further Steps report no frames remain. Idempotent.
func (s *Session) Results() *Results { return s.sys.Finish() }

// System exposes the underlying deployment (for inspection such as
// Student(); mutate it and determinism guarantees are off).
func (s *Session) System() *core.System { return s.sys }

// RunContext plays the whole stream, honouring context cancellation
// between frames, and returns the aggregated results.
func (s *Session) RunContext(ctx context.Context) (*Results, error) {
	for s.sys.Step() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.sys.Finish(), nil
}

// Observer receives streaming events from a running Session: per-window
// accuracy, controller rate commands and training sessions.
type Observer = core.Observer

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields are skipped.
type ObserverFuncs struct {
	WindowMAP       func(w metrics.WindowScore)
	RateCommand     func(pt RatePoint)
	TrainingSession func(rec SessionRecord)
}

// OnWindowMAP implements Observer.
func (o *ObserverFuncs) OnWindowMAP(w metrics.WindowScore) {
	if o.WindowMAP != nil {
		o.WindowMAP(w)
	}
}

// OnRateCommand implements Observer.
func (o *ObserverFuncs) OnRateCommand(pt RatePoint) {
	if o.RateCommand != nil {
		o.RateCommand(pt)
	}
}

// OnTrainingSession implements Observer.
func (o *ObserverFuncs) OnTrainingSession(rec SessionRecord) {
	if o.TrainingSession != nil {
		o.TrainingSession(rec)
	}
}
