package shoggoth

import (
	"context"
	"runtime"
	"sync"

	"shoggoth/internal/core"
	"shoggoth/internal/detect"
)

// StudentCache pretrains at most one student per profile and hands every
// run a clone-source of the identical model. Pretraining is deterministic
// in the profile seed, so a cached student equals a freshly pretrained one;
// the cache only removes redundant work when many sessions share a profile.
// The zero value is ready to use and safe for concurrent callers.
type StudentCache struct {
	mu       sync.Mutex
	students map[string]*detect.Student
	inflight map[string]*sync.Once
}

// Get returns the cached offline-pretrained student for a profile,
// pretraining it on first use. Concurrent callers for the same profile
// pretrain once.
func (c *StudentCache) Get(p *Profile) *detect.Student {
	c.mu.Lock()
	if c.students == nil {
		c.students = make(map[string]*detect.Student)
		c.inflight = make(map[string]*sync.Once)
	}
	if s, ok := c.students[p.Name]; ok {
		c.mu.Unlock()
		return s
	}
	once, ok := c.inflight[p.Name]
	if !ok {
		once = new(sync.Once)
		c.inflight[p.Name] = once
	}
	c.mu.Unlock()

	once.Do(func() {
		s := detect.DefaultPretrainedStudent(p)
		c.mu.Lock()
		c.students[p.Name] = s
		c.mu.Unlock()
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.students[p.Name]
}

// defaultPretrained fills cfg.Pretrained from the cache when the strategy
// deploys a student — the one rule both Fleet and Cluster apply, so every
// runner hands identical models to identical configs.
func defaultPretrained(cfg *Config, cache *StudentCache) {
	if cfg.Pretrained != nil || cfg.Profile == nil {
		return
	}
	if d, ok := core.Lookup(cfg.Kind); ok && d.Traits.Student {
		cfg.Pretrained = cache.Get(cfg.Profile)
	}
}

// Job is one session a Fleet runs: a config plus an optional per-session
// observer.
type Job struct {
	Config   Config
	Observer Observer
}

// Fleet runs many sessions — a (profile, strategy, seed) grid, a sweep, or
// one config per camera — on a bounded worker pool with a shared
// pretrained-student cache. The zero value is ready to use.
type Fleet struct {
	// Workers bounds concurrent sessions; 0 means GOMAXPROCS.
	Workers int
	// Cache, when set, shares pretrained students across fleets; nil uses
	// a fleet-private cache.
	Cache *StudentCache
	// Perf, when set, accumulates every completed session's workspace
	// counters (inference and training wall-clock throughput). Sessions
	// never share scratch — each owns a private workspace — so this is
	// pure post-hoc aggregation and never perturbs Results.
	Perf *PerfCounters

	own    StudentCache
	perfMu sync.Mutex
}

// cache returns the effective student cache.
func (f *Fleet) cache() *StudentCache {
	if f.Cache != nil {
		return f.Cache
	}
	return &f.own
}

// Pretrained returns the fleet's cached offline-pretrained student for a
// profile (exposed so harnesses can hand the identical model elsewhere).
func (f *Fleet) Pretrained(p *Profile) *detect.Student { return f.cache().Get(p) }

// Run executes the configs concurrently and returns results in input
// order. Configs without an explicit Pretrained student get one from the
// shared cache (identical to what they would pretrain themselves). The
// first session error, or a context cancellation, aborts the remainder.
func (f *Fleet) Run(ctx context.Context, cfgs []Config) ([]*Results, error) {
	jobs := make([]Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = Job{Config: cfg}
	}
	return f.RunJobs(ctx, jobs)
}

// RunJobs is Run with per-session observers.
func (f *Fleet) RunJobs(ctx context.Context, jobs []Job) ([]*Results, error) {
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := f.cache()
	jobs = append([]Job(nil), jobs...) // the warm loop below must not mutate the caller's slice

	// Warm the cache serially per distinct profile before fanning out, so
	// the pool spends its workers on sessions rather than duplicate
	// pretraining waits. Pretraining costs seconds per cold profile, so
	// honour cancellation between profiles.
	for i := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		defaultPretrained(&jobs[i].Config, cache)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]*Results, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			sess, err := NewSession(jobs[i].Config)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			if jobs[i].Observer != nil {
				sess.Observe(jobs[i].Observer)
			}
			out[i], errs[i] = sess.RunContext(ctx)
			if errs[i] != nil {
				cancel()
				return
			}
			if f.Perf != nil {
				f.perfMu.Lock()
				f.Perf.Add(sess.System().Workspace().Perf)
				f.perfMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	// Prefer a real session error over the cancellations it caused.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// Grid builds the (profile × strategy) config grid with shared options
// applied to every cell — the Table I shape, ready for Fleet.Run.
func Grid(profiles []*Profile, kinds []StrategyKind, opts ...Option) []Config {
	out := make([]Config, 0, len(profiles)*len(kinds))
	for _, p := range profiles {
		for _, kind := range kinds {
			out = append(out, NewConfig(kind, p, opts...))
		}
	}
	return out
}
